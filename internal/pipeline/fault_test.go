package pipeline_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/fault"
	"outliner/internal/obs"
	"outliner/internal/outline"
	"outliner/internal/par"
	"outliner/internal/pipeline"
	"outliner/internal/verify"
)

// chaosSources is the soak's tiny three-module app (shared with the
// parallel-determinism tests).
func chaosSources() []pipeline.Source {
	return []pipeline.Source{
		{Name: "app", Files: map[string]string{"app.sl": srcApp}},
		{Name: "models", Files: map[string]string{"models.sl": srcModels}},
		{Name: "vendor", Files: map[string]string{"vendor.sl": srcVendor}},
	}
}

// structuredFailure reports whether err is one of the diagnostics fault
// tolerance guarantees: a recovered worker panic, a verifier rejection, or a
// surfaced injected fault — alone or inside a keep-going aggregate (whose
// Unwrap []error the errors package traverses).
func structuredFailure(err error) bool {
	var pe *par.PanicError
	var ve *verify.Error
	return errors.As(err, &pe) || errors.As(err, &ve) || fault.IsInjected(err)
}

// TestChaosSoak is the fault-injection soak: many seeded builds of the same
// program, each under a different deterministic fault schedule. Every build
// must either fail with a structured diagnostic or produce a byte-identical
// image to the clean build — a fault may cost time (a retry, a rebuild, a
// cache miss) but never correctness, and a crash is always a bug.
//
// CHAOS_BUILDS overrides the seed count (CI's nightly sweep raises it);
// divergent seeds are written to CHAOS_ARTIFACT_DIR when set.
func TestChaosSoak(t *testing.T) {
	builds := 200
	if testing.Short() {
		builds = 40
	}
	if s := os.Getenv("CHAOS_BUILDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("CHAOS_BUILDS=%q: %v", s, err)
		}
		builds = n
	}

	sources := chaosSources()
	base := pipeline.Default
	base.OutlineRounds = 2
	base.SpecializeClosures = true
	base.Verify = true

	clean, err := pipeline.Build(sources, base)
	if err != nil {
		t.Fatalf("clean reference build failed: %v", err)
	}
	refProg := clean.Prog.String()

	cacheDir := t.TempDir()
	var failed, identical int
	for seed := 0; seed < builds; seed++ {
		cfg := base
		cfg.Parallelism = seed%4 + 1
		cfg.CacheDir = cacheDir
		cfg.Fault = fault.New(uint64(seed)+1, 0.04)
		res, err := pipeline.Build(sources, cfg)
		if err != nil {
			if !structuredFailure(err) {
				t.Errorf("seed %d: unstructured failure: %v", seed, err)
			}
			failed++
			continue
		}
		if got := res.Prog.String(); got != refProg || !reflect.DeepEqual(res.Image, clean.Image) {
			reportDivergence(t, seed, refProg, res.Prog.String())
			continue
		}
		identical++
	}
	t.Logf("chaos soak: %d builds, %d failed structured, %d byte-identical", builds, failed, identical)
	if builds >= 40 && (failed == 0 || identical == 0) {
		t.Errorf("soak did not exercise both outcomes: %d failed, %d identical of %d",
			failed, identical, builds)
	}
}

func reportDivergence(t *testing.T, seed int, want, got string) {
	t.Helper()
	t.Errorf("seed %d: build succeeded but image diverged from the clean build", seed)
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	body := fmt.Sprintf("chaos divergence, seed %d\n\n--- clean ---\n%s\n--- seed %d ---\n%s\n",
		seed, want, seed, got)
	path := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d.txt", seed))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
}

// TestInjectedWorkerPanicIsIsolated: a panic injected into a frontend worker
// surfaces as an error carrying a structured *par.PanicError — stage, task
// index, injected site — instead of crashing the process, and the recovery
// is visible on the build's counters.
func TestInjectedWorkerPanicIsIsolated(t *testing.T) {
	tr := obs.New()
	cfg := pipeline.OSize
	cfg.Tracer = tr
	cfg.Fault = fault.Exact(fault.At{Site: fault.WorkerTask, Key: "models", Kind: fault.PanicKind})
	_, err := pipeline.Build(chaosSources(), cfg)
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want an error chain carrying *par.PanicError", err)
	}
	if pe.Stage != "frontend" || pe.Index != 1 {
		t.Errorf("panic attributed to stage %q task %d, want frontend task 1 (models)", pe.Stage, pe.Index)
	}
	fp, ok := pe.Value.(*fault.Panic)
	if !ok || fp.Site != fault.WorkerTask {
		t.Errorf("recovered value %v, want the injected *fault.Panic", pe.Value)
	}
	c := tr.Counters()
	if c["fault/recovered_panics"] == 0 {
		t.Error("fault/recovered_panics counter not incremented")
	}
	if c["fault/worker/task"] != 1 {
		t.Errorf("fault/worker/task = %d, want 1 (mirrored from the injector)", c["fault/worker/task"])
	}
}

// TestKeepGoingReportsEveryModule: with KeepGoing, a build with two broken
// modules reports both failures in one *BuildErrors; without it, the build
// stops at the lowest-index failure.
func TestKeepGoingReportsEveryModule(t *testing.T) {
	sources := []pipeline.Source{
		{Name: "alpha", Files: map[string]string{"a.sl": "func okA() -> Int { return 1 }\n"}},
		{Name: "beta", Files: map[string]string{"b.sl": "func badB() -> Int { return missingB(1) }\n"}},
		{Name: "gamma", Files: map[string]string{"c.sl": "func badC() -> Int { return missingC(2) }\n"}},
	}
	tr := obs.New()
	cfg := pipeline.Default
	cfg.KeepGoing = true
	cfg.Tracer = tr
	_, err := pipeline.Build(sources, cfg)
	var be *pipeline.BuildErrors
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *pipeline.BuildErrors", err)
	}
	if len(be.Errs) != 2 {
		t.Fatalf("keep-going reported %d failures, want 2: %v", len(be.Errs), be.Errs)
	}
	for i, name := range []string{"beta", "gamma"} {
		if got := be.Errs[i].Error(); !contains(got, name) {
			t.Errorf("error %d does not name module %s: %s", i, name, got)
		}
	}
	if n := tr.Counters()["build/keep_going_errors"]; n != 2 {
		t.Errorf("build/keep_going_errors = %d, want 2", n)
	}

	cfg.KeepGoing = false
	cfg.Tracer = nil
	_, err = pipeline.Build(sources, cfg)
	if err == nil || errors.As(err, &be) && len(be.Errs) > 1 {
		t.Fatalf("first-error mode returned %v, want a single lowest-index failure", err)
	}
	if !contains(err.Error(), "beta") {
		t.Errorf("first-error mode should fail on beta (lowest index): %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPipelineRollbackMatchesLowerRoundBuild is the end-to-end graceful
// degradation check: corrupting whole-program outlining round 2 under
// rollback-round yields exactly the image a clean 1-round build produces,
// with the rollback visible in counters and remarks.
func TestPipelineRollbackMatchesLowerRoundBuild(t *testing.T) {
	cfg2 := pipeline.OSize
	cfg2.OutlineRounds = 2
	probe, err := appgen.BuildApp(appgen.UberRider, 0.3, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Outline.Rounds) < 2 || probe.Outline.Rounds[1].FunctionsCreated == 0 {
		t.Fatalf("precondition: round 2 must create functions, got %+v", probe.Outline.Rounds)
	}

	cfg1 := pipeline.OSize
	cfg1.OutlineRounds = 1
	clean, err := appgen.BuildApp(appgen.UberRider, 0.3, cfg1)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.New()
	bad := cfg2
	bad.Verify = true
	bad.OnVerifyFailure = outline.VerifyRollbackRound
	bad.Fault = fault.Exact(fault.At{Site: fault.OutlineRound, Key: "/round:2", Kind: fault.CorruptKind})
	bad.Tracer = tr
	got, err := appgen.BuildApp(appgen.UberRider, 0.3, bad)
	if err != nil {
		t.Fatalf("rollback build failed: %v", err)
	}
	if got.Prog.String() != clean.Prog.String() || !reflect.DeepEqual(got.Image, clean.Image) {
		t.Error("rolled-back build does not match the clean 1-round build")
	}
	if len(got.Outline.Rounds) != 1 {
		t.Errorf("stats kept %d rounds, want 1", len(got.Outline.Rounds))
	}
	c := tr.Counters()
	if c["outline/rounds_rolled_back"] != 1 {
		t.Errorf("outline/rounds_rolled_back = %d, want 1", c["outline/rounds_rolled_back"])
	}
	if c["fault/outline/round"] != 1 {
		t.Errorf("fault/outline/round = %d, want 1 (mirrored injection count)", c["fault/outline/round"])
	}
	found := false
	for _, r := range tr.Remarks() {
		if r.Status == "rolled-back" && r.Round == 2 {
			found = true
		}
	}
	if !found {
		t.Error("no rolled-back remark for round 2")
	}
}

// TestResilienceKnobsAreReportingOnly: KeepGoing and a degraded
// OnVerifyFailure mode must not perturb a clean build's bytes.
func TestResilienceKnobsAreReportingOnly(t *testing.T) {
	base, err := appgen.BuildApp(appgen.UberRider, 0.3, pipeline.OSize)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.OSize
	cfg.Verify = true
	cfg.KeepGoing = true
	cfg.OnVerifyFailure = outline.VerifyRollbackRound
	got, err := appgen.BuildApp(appgen.UberRider, 0.3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Prog.String() != base.Prog.String() || !reflect.DeepEqual(got.Image, base.Image) {
		t.Error("resilience knobs changed a clean build's output")
	}
}
