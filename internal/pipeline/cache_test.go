package pipeline_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"outliner/internal/cache"
	"outliner/internal/obs"
	"outliner/internal/pipeline"
)

// cacheTestSources is a two-module program with cross-module calls, so the
// machine stage's cross-reference handling participates in the keys.
func cacheTestSources() []pipeline.Source {
	lib := src("Lib", `
class Counter {
  var n: Int
  init() { self.n = 0 }
  func bump() -> Int {
    self.n = self.n + 1
    return self.n
  }
}
func makeCounter() -> Counter { return Counter() }
func scale(x: Int) -> Int { return x * 10 }
`)
	app := src("App", `
func main() {
  let c = makeCounter()
  print(c.bump())
  print(scale(x: c.bump()))
  print(c.bump())
}
`)
	return []pipeline.Source{lib, app}
}

// cacheConfigs are the pipeline shapes the cache must serve: the default
// pipeline caches both the llir and the machine stage, the whole-program
// pipeline only the llir stage. Verify stays on so a cache-hit build still
// proves the invariants hold.
func cacheConfigs() map[string]pipeline.Config {
	return map[string]pipeline.Config{
		"default":      {OutlineRounds: 1, SILOutline: true, Verify: true},
		"default-full": {OutlineRounds: 3, SILOutline: true, SpecializeClosures: true, MergeFunctions: true, FMSA: true, Verify: true},
		"wholeprog":    {WholeProgram: true, OutlineRounds: 5, SILOutline: true, MergeFunctions: true, PreserveDataLayout: true, SplitGCMetadata: true, Verify: true},
	}
}

// buildListing builds sources under cfg (optionally cached under dir) and
// returns the deterministic image listing plus the build's counters.
func buildListing(t *testing.T, cfg pipeline.Config, dir string, srcs []pipeline.Source) (string, map[string]int64) {
	t.Helper()
	tr := obs.New()
	cfg.Tracer = tr
	cfg.CacheDir = dir
	res, err := pipeline.Build(srcs, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteImageListing(&buf); err != nil {
		t.Fatalf("WriteImageListing: %v", err)
	}
	return buf.String(), tr.Counters()
}

// The acceptance guarantee: the built image is byte-identical whether the
// build runs with no cache, cold, warm from the memory tier, or warm from
// disk in a fresh process — at every parallelism level.
func TestCacheColdWarmByteIdentical(t *testing.T) {
	srcs := cacheTestSources()
	for name, cfg := range cacheConfigs() {
		for _, j := range []int{1, 4} {
			cfg := cfg
			cfg.Parallelism = j
			t.Run(name+"-j"+string(rune('0'+j)), func(t *testing.T) {
				dir := t.TempDir()
				defer cache.Forget(dir)
				ref, _ := buildListing(t, cfg, "", srcs)

				cold, cc := buildListing(t, cfg, dir, srcs)
				if cold != ref {
					t.Fatal("cold cached build differs from uncached build")
				}
				if cc["cache/hits"] != 0 || cc["cache/probes"] == 0 || cc["cache/stores"] == 0 {
					t.Fatalf("cold counters: %+v", cc)
				}

				warm, wc := buildListing(t, cfg, dir, srcs)
				if warm != ref {
					t.Fatal("warm (memory-tier) build differs from uncached build")
				}
				if wc["cache/probes"] == 0 || wc["cache/hits"] != wc["cache/probes"] || wc["cache/misses"] != 0 {
					t.Fatalf("warm counters: %+v", wc)
				}

				// A fresh process sees an empty memory tier and warms from disk.
				c, err := cache.Shared(dir)
				if err != nil {
					t.Fatal(err)
				}
				c.DropMemory()
				disk, dc := buildListing(t, cfg, dir, srcs)
				if disk != ref {
					t.Fatal("warm (disk-tier) build differs from uncached build")
				}
				if dc["cache/hits"] != dc["cache/probes"] || dc["cache/misses"] != 0 {
					t.Fatalf("disk-warm counters: %+v", dc)
				}
			})
		}
	}
}

// Editing one module's function bodies invalidates exactly that module's
// llir entry: the dependency hash other modules see is the edited module's
// exported-interface digest, which body edits leave unchanged. The unchanged
// module hits at both stages; the edited module rebuilds both.
func TestCacheInvalidationOnSourceEdit(t *testing.T) {
	cfg := pipeline.Config{OutlineRounds: 1, SILOutline: true, Verify: true}
	srcs := cacheTestSources()
	dir := t.TempDir()
	defer cache.Forget(dir)
	buildListing(t, cfg, dir, srcs)

	edited := cacheTestSources()
	edited[1] = src("App", `
func main() {
  let c = makeCounter()
  print(c.bump())
  print(scale(x: c.bump() + 100))
  print(c.bump())
}
`)
	ref, _ := buildListing(t, cfg, "", edited)
	got, counters := buildListing(t, cfg, dir, edited)
	if got != ref {
		t.Fatal("rebuild after edit differs from uncached build of the edited sources")
	}
	if counters["cache/llir/hits"] != 1 || counters["cache/llir/misses"] != 1 {
		t.Fatalf("want only the edited module's llir entry invalidated: %+v", counters)
	}
	if counters["cache/machine/hits"] != 1 || counters["cache/machine/misses"] != 1 {
		t.Fatalf("want exactly the unchanged module's machine entry to hit: %+v", counters)
	}
}

// Config fingerprints are stage-scoped: a backend-only change (outlining
// rounds) reuses every llir entry and rebuilds the machine stage; a
// frontend-relevant change (SILOutline) invalidates the llir stage too.
func TestCacheInvalidationOnConfigChange(t *testing.T) {
	base := pipeline.Config{OutlineRounds: 1, SILOutline: true, Verify: true}
	srcs := cacheTestSources()
	dir := t.TempDir()
	defer cache.Forget(dir)
	buildListing(t, base, dir, srcs)

	backend := base
	backend.OutlineRounds = 3
	ref, _ := buildListing(t, backend, "", srcs)
	got, counters := buildListing(t, backend, dir, srcs)
	if got != ref {
		t.Fatal("rebuild with new rounds differs from uncached build")
	}
	if counters["cache/llir/hits"] != int64(len(srcs)) {
		t.Fatalf("backend-only change should reuse llir entries: %+v", counters)
	}
	if counters["cache/machine/hits"] != 0 {
		t.Fatalf("backend change must invalidate machine entries: %+v", counters)
	}

	frontend := base
	frontend.SILOutline = false
	ref2, _ := buildListing(t, frontend, "", srcs)
	got2, counters2 := buildListing(t, frontend, dir, srcs)
	if got2 != ref2 {
		t.Fatal("rebuild without SIL outlining differs from uncached build")
	}
	if counters2["cache/llir/hits"] != 0 {
		t.Fatalf("frontend-relevant change should invalidate llir entries: %+v", counters2)
	}
}

// A cache directory full of well-formed entries holding garbage payloads —
// the envelope checksum passes, artifact decoding fails — must rebuild
// cleanly, count the corruption, republish, and hit on the next build.
func TestCacheCorruptPayloadForcesRebuild(t *testing.T) {
	cfg := pipeline.Config{OutlineRounds: 1, SILOutline: true, Verify: true}
	srcs := cacheTestSources()
	dir := t.TempDir()
	defer cache.Forget(dir)
	ref, _ := buildListing(t, cfg, dir, srcs)

	ents, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("no cache entries on disk: %v %v", ents, err)
	}
	for _, p := range ents {
		// Re-derive the documented entry envelope (magic, length, payload,
		// checksum) around a payload no artifact decoder accepts.
		payload := []byte("valid envelope, garbage payload")
		e := append([]byte("SLC1"), binary.LittleEndian.AppendUint64(nil, uint64(len(payload)))...)
		e = append(e, payload...)
		sum := sha256.Sum256(payload)
		if err := os.WriteFile(p, append(e, sum[:]...), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := cache.Shared(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.DropMemory()

	got, counters := buildListing(t, cfg, dir, srcs)
	if got != ref {
		t.Fatal("rebuild over corrupt payloads differs from the original build")
	}
	if counters["cache/hits"] != 0 || counters["cache/corrupt"] != counters["cache/probes"] {
		t.Fatalf("want every probe to miss as corrupt: %+v", counters)
	}

	// The rebuild republished good artifacts over the bad ones.
	warm, wc := buildListing(t, cfg, dir, srcs)
	if warm != ref || wc["cache/hits"] != wc["cache/probes"] {
		t.Fatalf("republished entries do not hit: %+v", wc)
	}
}

// Truncated disk entries (a crash mid-write would instead leave a temp file,
// but disks corrupt too) are misses, never errors.
func TestCacheTruncatedEntryForcesRebuild(t *testing.T) {
	cfg := pipeline.Config{OutlineRounds: 1, SILOutline: true, Verify: true}
	srcs := cacheTestSources()
	dir := t.TempDir()
	defer cache.Forget(dir)
	ref, _ := buildListing(t, cfg, dir, srcs)

	ents, _ := filepath.Glob(filepath.Join(dir, "*.art"))
	for _, p := range ents {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := cache.Shared(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.DropMemory()

	got, counters := buildListing(t, cfg, dir, srcs)
	if got != ref {
		t.Fatal("rebuild over truncated entries differs from the original build")
	}
	if counters["cache/hits"] != 0 {
		t.Fatalf("truncated entries reported as hits: %+v", counters)
	}
}

// Concurrent builds sharing one cache directory publish identical bytes for
// identical keys; under -race this doubles as the same-key write-race check.
func TestCacheConcurrentBuilds(t *testing.T) {
	cfg := pipeline.Config{OutlineRounds: 1, SILOutline: true, Verify: true, Parallelism: 2}
	srcs := cacheTestSources()
	dir := t.TempDir()
	defer cache.Forget(dir)
	ref, _ := buildListing(t, cfg, "", srcs)

	const builders = 4
	out := make([]string, builders)
	var wg sync.WaitGroup
	for b := 0; b < builders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			c := cfg
			c.CacheDir = dir
			res, err := pipeline.Build(srcs, c)
			if err != nil {
				t.Errorf("builder %d: %v", b, err)
				return
			}
			var buf bytes.Buffer
			if err := res.WriteImageListing(&buf); err != nil {
				t.Errorf("builder %d: %v", b, err)
				return
			}
			out[b] = buf.String()
		}(b)
	}
	wg.Wait()
	for b := 0; b < builders; b++ {
		if out[b] != ref {
			t.Fatalf("builder %d produced a different image", b)
		}
	}
}
