package pipeline_test

import (
	"reflect"
	"runtime"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/pipeline"
)

// buildParallel builds the synthetic app under cfg with the given worker
// bound and returns the result.
func buildParallel(t *testing.T, cfg pipeline.Config, workers int) *pipeline.Result {
	t.Helper()
	cfg.Parallelism = workers
	res, err := appgen.BuildApp(appgen.UberRider, 0.3, cfg)
	if err != nil {
		t.Fatalf("Parallelism=%d: %v", workers, err)
	}
	return res
}

// assertSameBuild asserts two builds are byte-identical: same machine
// program (the textual form covers every instruction byte), same laid-out
// image, same outlining statistics.
func assertSameBuild(t *testing.T, want, got *pipeline.Result, label string) {
	t.Helper()
	if w, g := want.Prog.String(), got.Prog.String(); w != g {
		t.Errorf("%s: machine programs differ (%d vs %d bytes of text)", label, len(w), len(g))
	}
	if !reflect.DeepEqual(want.Image, got.Image) {
		t.Errorf("%s: binary images differ: code %d/%d, total %d/%d",
			label, want.Image.CodeSize, got.Image.CodeSize,
			want.Image.TotalSize, got.Image.TotalSize)
	}
	if !reflect.DeepEqual(want.Outline, got.Outline) {
		t.Errorf("%s: outline stats differ:\n want %+v\n  got %+v", label, want.Outline, got.Outline)
	}
}

// TestParallelBuildDeterminism is the PR's hard requirement: the
// whole-program OSize build must produce a byte-identical binary image for
// any Parallelism value. Worker counts above GOMAXPROCS are included so the
// test exercises real goroutine interleaving even on a single-core machine.
func TestParallelBuildDeterminism(t *testing.T) {
	serial := buildParallel(t, pipeline.OSize, 1)
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		got := buildParallel(t, pipeline.OSize, workers)
		assertSameBuild(t, serial, got, "whole-program OSize, j="+itoa(workers))
	}
	// Same setting twice: catches nondeterminism that varies run to run
	// (map iteration order feeding candidate discovery, say) rather than
	// with the worker count.
	again := buildParallel(t, pipeline.OSize, 2)
	got := buildParallel(t, pipeline.OSize, 2)
	assertSameBuild(t, again, got, "whole-program OSize, j=2 repeated")
}

// TestParallelDefaultPipelineDeterminism covers the default pipeline's
// per-module codegen+outline fan-out.
func TestParallelDefaultPipelineDeterminism(t *testing.T) {
	cfg := pipeline.Default
	cfg.SpecializeClosures = true
	cfg.MergeFunctions = true
	serial := buildParallel(t, cfg, 1)
	for _, workers := range []int{2, runtime.NumCPU()} {
		got := buildParallel(t, cfg, workers)
		assertSameBuild(t, serial, got, "default pipeline, j="+itoa(workers))
	}
}

// TestParallelSourceBuildDeterminism drives pipeline.Build (frontend
// included) rather than BuildFromLLIR, at several worker counts.
func TestParallelSourceBuildDeterminism(t *testing.T) {
	sources := []pipeline.Source{
		{Name: "app", Files: map[string]string{"app.sl": srcApp}},
		{Name: "models", Files: map[string]string{"models.sl": srcModels}},
		{Name: "vendor", Files: map[string]string{"vendor.sl": srcVendor}},
	}
	build := func(workers int) *pipeline.Result {
		cfg := pipeline.OSize
		cfg.Verify = true
		cfg.Parallelism = workers
		res, err := pipeline.Build(sources, cfg)
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", workers, err)
		}
		return res
	}
	serial := build(1)
	for _, workers := range []int{2, 4} {
		assertSameBuild(t, serial, build(workers), "source build, j="+itoa(workers))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for ; n > 0; n /= 10 {
		b = append([]byte{byte('0' + n%10)}, b...)
	}
	return string(b)
}

const srcApp = `
func work(a: Int, b: Int) -> Int {
	var t = makePair(a, b)
	return t.sum()
}

func main() {
	var i = 0
	var acc = 0
	while i < 4 {
		acc = acc + work(i, i + 1)
		i = i + 1
	}
	print(acc)
}
`

const srcModels = `
class Pair {
	var x: Int
	var y: Int
	func sum() -> Int { return self.x + self.y }
}

func makePair(a: Int, b: Int) -> Pair {
	return Pair(x: a, y: b)
}
`

const srcVendor = `
func clampV(v: Int, lo: Int, hi: Int) -> Int {
	if v < lo { return lo }
	if v > hi { return hi }
	return v
}
`
