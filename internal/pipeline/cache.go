package pipeline

import (
	"context"
	"fmt"
	"sort"
	"time"

	"outliner/internal/artifact"
	"outliner/internal/cache"
	"outliner/internal/fault"
	"outliner/internal/frontend"
	"outliner/internal/layout"
	"outliner/internal/llir"
	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/outline"
)

// BuildCache is the pipeline's handle on the content-addressed incremental
// build cache (internal/cache). A nil *BuildCache is valid and always
// misses, so call sites stay unconditional — the same nil-safety contract
// obs.Tracer follows.
//
// What is cached, and under which key:
//
//   - stage "llir" (both pipelines): the lowered LLIR module produced by the
//     per-module frontend→SIL→LLIR stage. Input: the module's own sources
//     plus every other module's exported-interface digest (imports expose
//     declarations, not bodies — see frontend.InterfaceDigest), so a
//     body-only edit in one module leaves every other module's entry valid.
//     Config: only the fields that stage reads —
//     SILOutline, SpecializeClosures, Verify — so builds differing in
//     backend-only knobs (outlining rounds, merge passes, pipeline choice)
//     share frontend artifacts.
//   - stage "machine" (default pipeline only): the per-module machine
//     program after codegen and per-module outlining, plus its outlining
//     stats. Input: the canonical encoding of the (pre-merge) LLIR module
//     plus the cross-module-referenced symbols the merge passes must
//     preserve. Config: MergeFunctions, FMSA, OutlineRounds,
//     FlatOutlineCost, Verify.
//
// Post-irlink whole-program stages are deliberately uncached: they consume
// the merged program, whose content hash changes whenever any module
// changes, so a cache entry could never be reused across edits — it would
// only add encode/hash overhead to every build.
type BuildCache struct {
	c *cache.Cache
	// flight dedupes identical in-flight stage computations across the
	// concurrent builds sharing cfg.Flight (a compile daemon). nil outside
	// service mode and on faulted builds.
	flight *cache.Flight
	// fault arms the ArtifactDecode injection point (an injected decoder
	// rejection, degrading to a miss). nil when the build runs clean.
	fault *fault.Injector
}

// OpenBuildCache returns the cache for cfg.CacheDir, or nil (a valid
// always-miss cache) when no cache directory is configured. A faulted build
// gets a private cache handle, never the process-shared one — and neither the
// remote tier nor the single-flight layer: injected I/O errors and corruption
// must not leak into concurrent clean builds of the same directory, and a
// faulted build's artifacts must never be shared through a flight group.
func OpenBuildCache(cfg Config) (*BuildCache, error) {
	if cfg.CacheDir == "" {
		return nil, nil
	}
	var c *cache.Cache
	var err error
	if cfg.Fault != nil {
		c, err = cache.Open(cfg.CacheDir)
		if err == nil {
			c.SetFault(cfg.Fault)
		}
	} else {
		c, err = cache.Shared(cfg.CacheDir)
		if err == nil && cfg.Remote != nil {
			c.SetRemote(cfg.Remote)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	bc := &BuildCache{c: c, fault: cfg.Fault}
	if cfg.Fault == nil {
		bc.flight = cfg.Flight
	}
	return bc, nil
}

func (bc *BuildCache) enabled() bool { return bc != nil && bc.c != nil }

// SourceHash fingerprints one module's source content (name plus files in
// deterministic order).
func SourceHash(src Source) string {
	h := cache.NewHasher()
	h.WriteString(src.Name)
	for _, nf := range sortedFileList(src.Files) {
		h.WriteString(nf.name)
		h.WriteString(nf.text)
	}
	return h.Sum()
}

// ModuleKeys holds the per-module digests one build's key computations
// share: each module's source content is hashed exactly once, and each
// module's exported interface is digested exactly once, no matter how many
// importers fold them into their keys.
type ModuleKeys struct {
	// Src[i] is SourceHash of module i — the full content fingerprint.
	Src []string
	// Iface[i] is frontend.InterfaceDigest of module i's parsed files — the
	// dependency fingerprint importers see. Body edits leave it unchanged.
	Iface []string
}

// ComputeModuleKeys derives the build's shared digest table from the
// already-parsed modules. The cost is recorded under cache/key_hash_ns.
func ComputeModuleKeys(sources []Source, parsed [][]*frontend.File, tr *obs.Tracer) *ModuleKeys {
	start := time.Now()
	keys := &ModuleKeys{
		Src:   make([]string, len(sources)),
		Iface: make([]string, len(sources)),
	}
	for i, src := range sources {
		keys.Src[i] = SourceHash(src)
		keys.Iface[i] = frontend.InterfaceDigest(parsed[i]...)
	}
	tr.Add("cache/key_hash_ns", time.Since(start).Nanoseconds())
	return keys
}

// llirFingerprint covers exactly the Config fields the frontend→LLIR stage
// reads. Adding a field that changes per-module lowering MUST extend this
// string (append-only; the shape change alone invalidates old entries).
func llirFingerprint(cfg Config) string {
	return fmt.Sprintf("siloutline=%t specclosures=%t verify=%t",
		cfg.SILOutline, cfg.SpecializeClosures, cfg.Verify) + faultFingerprint(cfg)
}

// machineFingerprint covers the Config fields the default pipeline's
// per-module codegen+outline stage reads. OnVerifyFailure participates
// because a degraded (rolled-back) artifact is a different program than an
// abort-mode build would have produced. KeepGoing does not: it only changes
// error reporting, never a successful artifact.
func machineFingerprint(cfg Config) string {
	onvf := cfg.OnVerifyFailure
	if onvf == "" {
		onvf = outline.VerifyAbort
	}
	return fmt.Sprintf("merge=%t fmsa=%t rounds=%d flat=%t verify=%t onvf=%s",
		cfg.MergeFunctions, cfg.FMSA, cfg.OutlineRounds, cfg.FlatOutlineCost, cfg.Verify, onvf) +
		faultFingerprint(cfg) + profileFingerprint(cfg) + layoutFingerprint(cfg)
}

// layoutFingerprint keys machine-stage entries by the layout policy. The
// machine stage itself is per-module and pre-link — the layout pass runs
// after it and cannot change its artifacts — but the policy joins the key
// anyway, like prof=/coldonly= do, so a future per-module layout hook can
// never silently share entries across policies. An unset (or explicit none)
// policy contributes nothing, keeping earlier releases' keys intact.
func layoutFingerprint(cfg Config) string {
	if cfg.Layout == "" || cfg.Layout == layout.None {
		return ""
	}
	return " layout=" + cfg.Layout
}

// profileFingerprint keys machine-stage entries by profile identity and
// cold-only policy. The profile content digest (not a file name) identifies
// the profile, so two different profiles can never share entries; an
// unprofiled, ungated build contributes nothing, keeping its keys identical
// to every earlier release's.
func profileFingerprint(cfg Config) string {
	if cfg.Profile == nil && !cfg.OutlineColdOnly {
		return ""
	}
	return fmt.Sprintf(" prof=%s coldonly=%t coldthr=%d",
		cfg.Profile.Digest(), cfg.OutlineColdOnly, cfg.OutlineColdThreshold)
}

// faultFingerprint keys cache entries by the fault-injection schedule. Any
// armed injector — even rate 0 — gets its own key space: a faulted build may
// cache artifacts shaped by injected corruption (a rolled-back outline, a
// degraded merge), and a clean build must never consume them, nor publish
// entries a replaying chaos seed would then unexpectedly hit.
func faultFingerprint(cfg Config) string {
	if cfg.Fault == nil {
		return ""
	}
	// String covers both schedule forms: "seed=N rate=R" for chaos injectors
	// and the sorted point list for scripted ones.
	return " fault=" + cfg.Fault.String()
}

// llirKey scopes module self's dependency fingerprint to its imports'
// exported interfaces: the input hash covers self's own sources in full plus
// only the interface digests of the other modules, in module order.
func (bc *BuildCache) llirKey(self int, keys *ModuleKeys, cfg Config) cache.Key {
	h := cache.NewHasher().WriteString(keys.Src[self])
	for j, d := range keys.Iface {
		if j != self {
			h.WriteString(d)
		}
	}
	return cache.Key{
		Stage:  "llir",
		Input:  h.Sum(),
		Config: llirFingerprint(cfg),
		Schema: artifact.SchemaVersion,
	}
}

// machineKey derives the default pipeline's per-module codegen+outline key
// from the module's canonical encoding and the cross-module-referenced
// symbols the merge passes must keep.
func machineKey(encModule []byte, crossRefs map[string]bool, lm *llir.Module, cfg Config) cache.Key {
	h := cache.NewHasher().Write(encModule)
	if len(crossRefs) > 0 {
		// Only the refs that name this module's functions influence the
		// stage; sorting keeps the hash independent of map order.
		var keep []string
		for _, f := range lm.Funcs {
			if crossRefs[f.Name] {
				keep = append(keep, f.Name)
			}
		}
		sort.Strings(keep)
		h.WriteString("keep")
		for _, s := range keep {
			h.WriteString(s)
		}
	}
	return cache.Key{
		Stage:  "machine",
		Input:  h.Sum(),
		Config: machineFingerprint(cfg),
		Schema: artifact.SchemaVersion,
	}
}

// Cache counters. Every lookup counts a probe and then exactly one of hit
// (a stored entry decoded into a usable artifact) or miss (absent entry, or
// a corrupted one — additionally counted under cache/corrupt).
func cacheProbe(tr *obs.Tracer, stage string) {
	tr.Add("cache/probes", 1)
	tr.Add("cache/"+stage+"/probes", 1)
}

func cacheHit(tr *obs.Tracer, stage string, n int) {
	tr.Add("cache/hits", 1)
	tr.Add("cache/"+stage+"/hits", 1)
	tr.Add("cache/bytes_read", int64(n))
}

func cacheMiss(tr *obs.Tracer, stage string, corrupt bool) {
	tr.Add("cache/misses", 1)
	tr.Add("cache/"+stage+"/misses", 1)
	if corrupt {
		tr.Add("cache/corrupt", 1)
	}
}

func cacheStore(tr *obs.Tracer, stage string, n int) {
	tr.Add("cache/stores", 1)
	tr.Add("cache/bytes_written", int64(n))
}

// probeCounters mirrors what a disk or remote operation survived — retries, a
// failed corrupt-entry deletion, a degraded-over I/O or shard error — into the
// build's counters (-summary's resilience section). Zero-valued fields add
// nothing, so clean builds keep clean counter sets.
func probeCounters(tr *obs.Tracer, pr cache.Probe) {
	if pr.Retries > 0 {
		tr.Add("cache/retries", int64(pr.Retries))
	}
	if pr.RemoveErr != nil {
		tr.Add("cache/remove_failed", 1)
	}
	if pr.IOErr != nil {
		tr.Add("cache/io_errors", 1)
	}
	if pr.RemoteErr != nil {
		tr.Add("cache/remote_errors", 1)
	}
}

// tierCounter attributes a hit to the tier that served it ("memory", "disk",
// "remote-shard-<n>"), the -summary scoreboard's per-tier breakdown.
func tierCounter(tr *obs.Tracer, tier string) {
	if tier != "" {
		tr.Add("cache/tier/"+tier+"/hits", 1)
	}
}

// Single-flight counters. computes counts closures that actually ran the
// stage (the dedupe test's strict equation: computes == unique stage keys);
// deduped counts builds that consumed another build's in-flight result.
func flightCompute(tr *obs.Tracer, stage string) {
	tr.Add("flight/computes", 1)
	tr.Add("flight/"+stage+"/computes", 1)
}

func flightDeduped(tr *obs.Tracer, stage string) {
	tr.Add("flight/deduped", 1)
	tr.Add("flight/"+stage+"/deduped", 1)
}

// decodeFault consults the ArtifactDecode injection point for key; a non-nil
// result models the decoder rejecting the artifact (degrades to a miss).
func (bc *BuildCache) decodeFault(key cache.Key) error {
	return bc.fault.MaybeError(fault.ArtifactDecode, key.Stage+"/"+key.Input)
}

// CompileToLLIRCached is CompileToLLIR behind the build cache: on a hit the
// stored module is decoded instead of recompiled; on a miss (or a corrupted
// entry) the module is compiled and published. keys must be the build's
// ComputeModuleKeys table and self the index of src. Cold and warm paths
// yield structurally identical modules, so the built image is byte-identical
// either way.
func (bc *BuildCache) CompileToLLIRCached(src Source, cfg Config, imports *frontend.Imports, self int, keys *ModuleKeys, lane int) (*llir.Module, error) {
	if !bc.enabled() {
		return CompileToLLIR(src, cfg, imports)
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	tr := cfg.Tracer
	keyStart := time.Now()
	key := bc.llirKey(self, keys, cfg)
	tr.Add("cache/key_hash_ns", time.Since(keyStart).Nanoseconds())
	sp := tr.StartSpan("cache llir "+src.Name, lane)
	cacheProbe(tr, "llir")
	data, ok, pr := bc.c.GetProbeCtx(ctx, key)
	probeCounters(tr, pr)
	if ok {
		derr := bc.decodeFault(key)
		var m *llir.Module
		if derr == nil {
			m, derr = artifact.DecodeModule(data)
		}
		if derr == nil {
			cacheHit(tr, "llir", len(data))
			tierCounter(tr, pr.Tier)
			sp.Arg("hit", true).Arg("tier", pr.Tier).End()
			return m, nil
		}
		cacheMiss(tr, "llir", true)
	} else {
		cacheMiss(tr, "llir", pr.Corrupt)
	}
	sp.Arg("hit", false).End()
	if bc.flight == nil {
		m, err := CompileToLLIR(src, cfg, imports)
		if err != nil {
			return nil, err
		}
		enc := artifact.EncodeModule(m)
		probeCounters(tr, bc.c.PutProbeCtx(ctx, key, enc))
		cacheStore(tr, "llir", len(enc))
		return m, nil
	}
	// Service mode: route the miss through the single-flight layer so
	// concurrent builds compiling the same key do the work once. The flight's
	// currency is the encoded artifact — each waiter decodes a private copy,
	// so no mutable structure is ever shared across builds.
	var computed *llir.Module
	enc, shared, err := bc.flight.Do(key, func() ([]byte, error) {
		// A cancelled leader must not compute or publish: returning the
		// context error here makes flight.Do hand waiters ErrFlightAborted
		// while this build reports its own cancellation.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// Re-probe under the flight: an earlier leader may have published and
		// left the group between this build's probe and its turn here.
		if data, ok, _ := bc.c.GetProbeCtx(ctx, key); ok {
			return data, nil
		}
		flightCompute(tr, "llir")
		m, cerr := CompileToLLIR(src, cfg, imports)
		if cerr != nil {
			return nil, cerr
		}
		if cerr := ctx.Err(); cerr != nil {
			// Cancelled mid-compute: discard the result unpublished so a later
			// clean build can never observe a cancelled build's artifact.
			return nil, cerr
		}
		enc := artifact.EncodeModule(m)
		probeCounters(tr, bc.c.PutProbeCtx(ctx, key, enc))
		cacheStore(tr, "llir", len(enc))
		computed = m
		return enc, nil
	})
	if shared {
		flightDeduped(tr, "llir")
	}
	if err != nil {
		return nil, err
	}
	if computed != nil {
		// This build led the flight: return the module it compiled directly,
		// exactly the non-flight cold path.
		return computed, nil
	}
	m, derr := artifact.DecodeModule(enc)
	if derr != nil {
		// The shared bytes failed this build's decode — compile privately,
		// the degraded path of last resort (the leader already published).
		return CompileToLLIR(src, cfg, imports)
	}
	return m, nil
}

// getMachine probes the per-module machine-stage entry. The bool reports a
// usable hit and tier names the tier that served it; stats may be nil (a
// build with OutlineRounds == 0).
func (bc *BuildCache) getMachine(ctx context.Context, key cache.Key, tr *obs.Tracer) (*mir.Program, *outline.Stats, string, bool) {
	cacheProbe(tr, "machine")
	data, ok, pr := bc.c.GetProbeCtx(ctx, key)
	probeCounters(tr, pr)
	if !ok {
		cacheMiss(tr, "machine", pr.Corrupt)
		return nil, nil, "", false
	}
	derr := bc.decodeFault(key)
	var p *mir.Program
	var st *outline.Stats
	if derr == nil {
		p, st, derr = artifact.DecodeMachine(data)
	}
	if derr != nil {
		cacheMiss(tr, "machine", true)
		return nil, nil, "", false
	}
	cacheHit(tr, "machine", len(data))
	tierCounter(tr, pr.Tier)
	return p, st, pr.Tier, true
}

func (bc *BuildCache) putMachine(ctx context.Context, key cache.Key, p *mir.Program, st *outline.Stats, tr *obs.Tracer) {
	enc := artifact.EncodeMachine(p, st)
	probeCounters(tr, bc.c.PutProbeCtx(ctx, key, enc))
	cacheStore(tr, "machine", len(enc))
}

// machineMiss runs the per-module machine-stage computation on a cache miss
// and publishes the artifact — through the single-flight layer when one is
// configured, so concurrent service-mode builds compute each key once.
// compute must be single-shot: it mutates its module in place (the merge
// passes), and machineMiss guarantees at most one invocation per call.
func (bc *BuildCache) machineMiss(ctx context.Context, key cache.Key, tr *obs.Tracer, compute func() (*mir.Program, *outline.Stats, error)) (*mir.Program, error) {
	if !bc.enabled() || bc.flight == nil {
		p, st, err := compute()
		if err != nil {
			return nil, err
		}
		if bc.enabled() {
			bc.putMachine(ctx, key, p, st, tr)
		}
		return p, nil
	}
	var computed *mir.Program
	enc, shared, err := bc.flight.Do(key, func() ([]byte, error) {
		// A cancelled leader must not compute or publish: returning the
		// context error here makes flight.Do hand waiters ErrFlightAborted
		// while this build reports its own cancellation.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// Re-probe under the flight: an earlier leader may have published and
		// left the group between this build's probe and its turn here.
		if data, ok, _ := bc.c.GetProbeCtx(ctx, key); ok {
			return data, nil
		}
		flightCompute(tr, "machine")
		p, st, cerr := compute()
		if cerr != nil {
			return nil, cerr
		}
		if cerr := ctx.Err(); cerr != nil {
			// Cancelled mid-compute: discard the result unpublished so a later
			// clean build can never observe a cancelled build's artifact.
			return nil, cerr
		}
		enc := artifact.EncodeMachine(p, st)
		probeCounters(tr, bc.c.PutProbeCtx(ctx, key, enc))
		cacheStore(tr, "machine", len(enc))
		computed = p
		return enc, nil
	})
	if shared {
		flightDeduped(tr, "machine")
	}
	if err != nil {
		return nil, err
	}
	if computed != nil {
		// This build led the flight: its compute emitted outlining counters
		// live, so return its program directly.
		return computed, nil
	}
	p, st, derr := artifact.DecodeMachine(enc)
	if derr != nil {
		// The shared bytes failed this build's decode. compute is single-shot
		// and has not run in this build, so the private fallback is safe; the
		// leader already published, so nothing is re-published.
		p, _, cerr := compute()
		return p, cerr
	}
	replayOutlineCounters(tr, st)
	return p, nil
}

// replayOutlineCounters re-emits the per-round outlining counters a cache
// hit skipped, so counter-derived reports (fig12's Table II, -summary's
// convergence table) agree between cold and warm builds. Discovery-internal
// counters (suffix-tree size, candidates found/rejected) are not stored in
// the artifact and stay absent on warm builds.
func replayOutlineCounters(tr *obs.Tracer, st *outline.Stats) {
	if st == nil {
		return
	}
	for _, rs := range st.Rounds {
		tr.Add("outline/rounds", 1)
		tr.Add(obs.RoundCounter(rs.Round, obs.RoundSequences), int64(rs.SequencesOutlined))
		tr.Add(obs.RoundCounter(rs.Round, obs.RoundFunctions), int64(rs.FunctionsCreated))
		tr.Add(obs.RoundCounter(rs.Round, obs.RoundOutlinedBytes), int64(rs.OutlinedBytes))
		tr.Add(obs.RoundCounter(rs.Round, obs.RoundBytesSaved), int64(rs.BytesSaved))
		tr.Add("outline/sequences", int64(rs.SequencesOutlined))
		tr.Add("outline/functions", int64(rs.FunctionsCreated))
		tr.Add("outline/outlined_bytes", int64(rs.OutlinedBytes))
		tr.Add("outline/bytes_saved", int64(rs.BytesSaved))
	}
}
