package pipeline_test

import (
	"testing"

	"outliner/internal/exec"
	"outliner/internal/layout"
	"outliner/internal/obs"
	"outliner/internal/pipeline"
)

// The none policy is part of the determinism contract: an unset knob, an
// explicit "none", and an active policy with no profile to act on must all
// produce byte-identical images.
func TestLayoutNoneByteIdentical(t *testing.T) {
	srcs := cacheTestSources()
	base := pipeline.OSize
	base.Verify = true
	want, _ := buildListing(t, base, "", srcs)

	explicit := base
	explicit.Layout = layout.None
	if got, _ := buildListing(t, explicit, "", srcs); got != want {
		t.Error("-layout none changed the image")
	}

	noProfile := base
	noProfile.Layout = layout.C3
	if got, _ := buildListing(t, noProfile, "", srcs); got != want {
		t.Error("-layout c3 with no profile changed the image")
	}
}

func TestLayoutUnknownPolicyFails(t *testing.T) {
	cfg := pipeline.OSize
	cfg.Layout = "pettis-hansen"
	if _, err := pipeline.Build(cacheTestSources(), cfg); err == nil {
		t.Fatal("unknown layout policy did not fail the build")
	}
}

// A profiled layout build must stay byte-identical at any parallelism and
// across restarts (simulated by fully independent builds) for a fixed
// profile — the repo's standing determinism guarantee, now with the layout
// pass in the loop.
func TestLayoutByteIdenticalAcrossParallelismAndRestarts(t *testing.T) {
	srcs := cacheTestSources()
	base := pipeline.OSize
	base.Verify = true
	prof, _ := collectMainProfile(t, base, srcs)

	for _, policy := range []string{layout.HotCold, layout.C3} {
		var want string
		for _, jobs := range []int{1, 4, 4} {
			cfg := base
			cfg.Parallelism = jobs
			cfg.Profile = prof
			cfg.Layout = policy
			got, _ := buildListing(t, cfg, "", srcs)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: -j %d image differs from -j 1", policy, jobs)
			}
		}
	}
}

// Reordering moves addresses, never behavior: every layout policy must run
// main to the same output.
func TestLayoutExecutionEquivalent(t *testing.T) {
	srcs := cacheTestSources()
	base := pipeline.OSize
	base.Verify = true
	prof, _ := collectMainProfile(t, base, srcs)

	var want string
	for _, policy := range []string{layout.None, layout.HotCold, layout.C3} {
		cfg := base
		cfg.Profile = prof
		cfg.Layout = policy
		res, err := pipeline.Build(srcs, cfg)
		if err != nil {
			t.Fatalf("%s: Build: %v", policy, err)
		}
		m, err := exec.New(res.Prog, exec.Options{MaxSteps: 10_000_000})
		if err != nil {
			t.Fatalf("%s: exec.New: %v", policy, err)
		}
		out, err := m.Run("main")
		if err != nil {
			t.Fatalf("%s: Run: %v", policy, err)
		}
		if want == "" {
			want = out
			continue
		}
		if out != want {
			t.Errorf("%s: output %q differs from none's %q", policy, out, want)
		}
	}
}

// The layout policy joins the machine-stage cache fingerprint: a warm
// profiled build without layout must not serve its machine artifacts to the
// same profile built with -layout c3.
func TestLayoutJoinsCacheKey(t *testing.T) {
	srcs := cacheTestSources()
	dir := t.TempDir()
	base := pipeline.Config{OutlineRounds: 1, SILOutline: true, Verify: true}
	prof, _ := collectMainProfile(t, base, srcs)
	base.Profile = prof

	buildListing(t, base, dir, srcs) // cold: populate
	_, warm := buildListing(t, base, dir, srcs)
	if warm["cache/misses"] != 0 || warm["cache/hits"] == 0 {
		t.Fatalf("profiled warm build not fully cached: %v", warm)
	}

	laid := base
	laid.Layout = layout.C3
	_, c := buildListing(t, laid, dir, srcs)
	if c["cache/machine/misses"] == 0 {
		t.Errorf("-layout c3 build reused no-layout machine artifacts: %v", c)
	}
}

// An active profiled layout emits its decision telemetry: layout/* counters,
// function-layout remarks with the driving call edge, and the before/after
// cross-page counters with after no worse than before.
func TestLayoutTelemetryAndPageCounters(t *testing.T) {
	srcs := cacheTestSources()
	base := pipeline.OSize
	base.Verify = true
	prof, _ := collectMainProfile(t, base, srcs)

	tr := obs.New()
	cfg := base
	cfg.Tracer = tr
	cfg.Profile = prof
	cfg.Layout = layout.C3
	res, err := pipeline.Build(srcs, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if res.Layout == nil || res.Layout.Policy != layout.C3 {
		t.Fatalf("Result.Layout = %+v, want c3 stats", res.Layout)
	}
	if res.PreLayoutImage == nil {
		t.Fatal("Result.PreLayoutImage is nil for an active profiled layout")
	}
	counters := tr.Counters()
	if counters["layout/clusters"] == 0 {
		t.Errorf("no layout/clusters counter: %v", counters)
	}
	if counters["layout/cross_page_calls_after"] > counters["layout/cross_page_calls_before"] {
		t.Errorf("c3 made cross-page calls worse: before=%d after=%d",
			counters["layout/cross_page_calls_before"], counters["layout/cross_page_calls_after"])
	}
	sawLayoutRemark := false
	for _, r := range tr.Remarks() {
		if r.Pass != "function-layout" {
			continue
		}
		sawLayoutRemark = true
		if r.Caller == "" || r.Function == "" {
			t.Errorf("layout remark missing call edge: %+v", r)
		}
	}
	if res.Layout.Merges > 0 && !sawLayoutRemark {
		t.Error("c3 merged clusters but emitted no function-layout remarks")
	}
}
