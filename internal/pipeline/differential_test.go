package pipeline_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/difftest"
	"outliner/internal/exec"
	"outliner/internal/pipeline"
)

// TestDifferentialFuzz is the repo's semantic fuzzer: generate synthetic
// apps from a sweep of seeds, compile each at every point of the difftest
// lattice, execute, and require the oracle to find no divergence. Any
// miscompilation anywhere in the stack — frontend, SIL passes, SSA
// construction, out-of-SSA, register allocation, IR linking, or any number
// of outlining rounds — shows up as an output/trap/budget divergence.
func TestDifferentialFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzz is slow")
	}
	pts := difftest.Lattice()
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed%d", trial), func(t *testing.T) {
			t.Parallel()
			profile := appgen.UberRider
			profile.Seed = int64(1000 + trial*37)
			profile.Spans = 3
			scale := 0.15 + 0.05*float64(trial%3)
			mods := appgen.Generate(profile, scale)

			o := &difftest.Oracle{MaxSteps: 100_000_000}
			div, err := o.Check(mods, pts)
			if err != nil {
				t.Fatalf("reference build: %v", err)
			}
			if div != nil {
				t.Fatal(div)
			}
		})
	}
}

// TestDifferentialSmoke is the always-on variant: two seeds across the
// three-point smoke lattice, small enough for -short and every CI run.
func TestDifferentialSmoke(t *testing.T) {
	pts := difftest.SmokeLattice()
	for _, seed := range []int64{11, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			profile := appgen.UberRider
			profile.Seed = seed
			profile.Spans = 1
			mods := appgen.Generate(profile, 0.05)
			o := &difftest.Oracle{MaxSteps: 50_000_000}
			div, err := o.Check(mods, pts)
			if err != nil {
				t.Fatalf("reference build: %v", err)
			}
			if div != nil {
				t.Fatal(div)
			}
		})
	}
}

// TestDifferentialBenchSuite runs every Table IV benchmark across outlining
// rounds 0..5 and requires identical output at each level (not just the
// two levels Table IV itself compares).
func TestDifferentialBenchSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// A representative subset keeps the matrix affordable; the full suite
	// runs at two levels in the experiments tests.
	programs := []string{"quicksort", "redblacktree", "json", "splaytree", "dijkstra", "huffman"}
	for _, name := range programs {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			benches := mustLoadBenchmarks(t)
			text, ok := benches[name]
			if !ok {
				t.Fatalf("missing benchmark %s", name)
			}
			want := ""
			for rounds := 0; rounds <= 5; rounds++ {
				cfg := pipeline.OSize
				cfg.OutlineRounds = rounds
				cfg.Verify = true
				res, err := pipeline.Build([]pipeline.Source{
					{Name: name, Files: map[string]string{name + ".sl": text}},
				}, cfg)
				if err != nil {
					t.Fatalf("rounds=%d: %v", rounds, err)
				}
				m, err := exec.New(res.Prog, exec.Options{MaxSteps: 200_000_000})
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.Run("main")
				if err != nil {
					t.Fatalf("rounds=%d: %v", rounds, err)
				}
				if want == "" {
					want = got
				} else if got != want {
					t.Fatalf("rounds=%d changed output:\n%s\nvs\n%s", rounds, got, want)
				}
			}
		})
	}
}

func mustLoadBenchmarks(t *testing.T) map[string]string {
	t.Helper()
	// Mirror experiments.LoadBenchmarks without the import (avoids a
	// dependency from pipeline tests on the experiments package).
	dirs := []string{"../../testdata/benchmarks", "testdata/benchmarks"}
	for _, dir := range dirs {
		out, err := readBenchDir(dir)
		if err == nil && len(out) > 0 {
			return out
		}
	}
	t.Fatal("benchmark dir not found")
	return nil
}

func readBenchDir(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".sl") {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out[strings.TrimSuffix(e.Name(), ".sl")] = string(text)
	}
	return out, nil
}
