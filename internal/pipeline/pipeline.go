// Package pipeline assembles the two build pipelines the paper compares:
//
//   - the default iOS pipeline (§II-A, Figure 2): each module is compiled
//     independently to machine code (with optional per-module machine
//     outlining, as Swift 5.2's -Osize does), and the system linker
//     concatenates the results;
//   - the new whole-program pipeline (§V-A, Figure 10): every module stops
//     at LLIR, llvm-link (internal/irlink) merges the IR, mid-level
//     optimizations run over the merged module, and machine outlining sees
//     the entire program at once.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"outliner/internal/artifact"
	"outliner/internal/binimg"
	"outliner/internal/cache"
	"outliner/internal/codegen"
	"outliner/internal/fault"
	"outliner/internal/frontend"
	"outliner/internal/irlink"
	"outliner/internal/layout"
	"outliner/internal/llir"
	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/outline"
	"outliner/internal/par"
	"outliner/internal/perf"
	"outliner/internal/profile"
	"outliner/internal/sir"
	"outliner/internal/verify"
)

// Config selects pipeline and optimization settings.
type Config struct {
	// Ctx bounds the build: when it is cancelled (a client disconnect, a
	// request deadline, a daemon drain), the parallel stages stop claiming
	// work, cache retry loops and remote requests abort, and the build fails
	// promptly with an error wrapping the context's error. nil means
	// context.Background() — never cancelled. Cancellation is the one
	// non-deterministic input a build accepts; a cancelled build never
	// publishes cache entries, so determinism of *artifacts* is preserved:
	// every entry a later build can observe came from a run that finished.
	Ctx context.Context
	// WholeProgram switches to the new pipeline (IR-level link before
	// code generation and outlining).
	WholeProgram bool
	// OutlineRounds is the repeated-machine-outlining count (the artifact's
	// -outline-repeat-count). 0 disables machine outlining.
	OutlineRounds int
	// SILOutline enables the SIL-level outlining pass (Table I row 2).
	SILOutline bool
	// SpecializeClosures enables SIL-level closure specialization, the
	// source of the paper's longest repeated pattern (Listing 9).
	SpecializeClosures bool
	// MergeFunctions enables LLVM-IR-level function merging (Table I
	// row 3). In the default pipeline it runs per module; in the
	// whole-program pipeline it runs after the IR link.
	MergeFunctions bool
	// FMSA enables merging of similar (not identical) functions by
	// sequence alignment (Table I row 4).
	FMSA bool
	// FlatOutlineCost is the cost-model ablation (see outline.Options).
	FlatOutlineCost bool
	// PreserveDataLayout keeps per-module global ordering in the IR link
	// (§VI-3's fix). Only meaningful with WholeProgram.
	PreserveDataLayout bool
	// SplitGCMetadata enables the §VI-2 metadata-attribute fix. Mixed
	// Swift/Objective-C programs fail to link without it.
	SplitGCMetadata bool
	// CanonicalizeSequences enables the future-work extension that rewrites
	// commutative operations into canonical operand order before outlining,
	// exposing semantically-equivalent sequences as textual matches (§VIII
	// direction 1).
	CanonicalizeSequences bool
	// LayoutOutlined places outlined functions next to their heaviest
	// caller after outlining (§VIII direction 3).
	LayoutOutlined bool
	// Verify runs IR and machine verifiers between stages.
	Verify bool
	// Parallelism bounds the workers of the parallel build stages:
	// per-module frontend+lowering, per-function codegen, per-module
	// codegen+outlining in the default pipeline, and the outliner's
	// candidate analysis. 0 means one worker per CPU
	// (runtime.GOMAXPROCS(0)); 1 reproduces the fully serial pipeline.
	// The built image is byte-identical for every value.
	Parallelism int
	// Tracer receives build telemetry: stage and worker spans (exportable
	// as a Chrome trace), counters, and outliner decision remarks. nil
	// means "telemetry off": the pipeline then runs a private timing-only
	// collector (so Result.Timings stays available) whose overhead is a
	// few time.Now calls per stage. Telemetry is strictly observational —
	// the built image is byte-identical with any Tracer or none.
	Tracer *obs.Tracer
	// CacheDir enables the content-addressed incremental build cache
	// (internal/cache, serialized by internal/artifact): per-module LLIR
	// lowering (both pipelines) and per-module codegen+outlining (default
	// pipeline) are keyed by input content, stage-relevant config
	// fingerprint, and codec schema version. Empty means "cache off".
	// Caching is strictly an accelerator: the built image is byte-identical
	// whether a build runs cold, warm, or with no cache at all, and a
	// damaged cache entry is treated as a miss, never an error.
	CacheDir string
	// Flight is the build farm's single-flight layer: when several concurrent
	// builds (a compile daemon's requests) share one Flight, identical
	// in-flight stage keys are computed once and the encoded artifact is
	// shared; every waiter decodes a private copy. Strictly an accelerator,
	// like the cache itself: it never changes an artifact, so it is excluded
	// from cache fingerprints. nil disables dedupe. Fault-armed builds ignore
	// it (they must not share work with clean builds).
	Flight *cache.Flight
	// Remote attaches a sharded remote cache tier (cache.NewRemote) behind
	// CacheDir: probes that miss memory and disk consult the owning shard,
	// and publications replicate there. A dead or corrupt shard degrades to
	// a miss, never a failure. Requires CacheDir; attaching a remote to a
	// shared cache directory attaches it for every build in the process
	// using that directory. Fault-armed builds ignore it.
	Remote *cache.Remote
	// KeepGoing makes the per-module parallel stages — frontend lowering in
	// both pipelines, and the default pipeline's per-module codegen+outline —
	// run every module even after one fails, then fail with a *BuildErrors
	// aggregating every per-module error instead of just the lowest-index
	// one. The whole-program pipeline's post-link stages operate on a single
	// merged program and keep first-error semantics. Reporting-only: a
	// successful build's output is identical either way, so KeepGoing is
	// excluded from cache fingerprints.
	KeepGoing bool
	// OnVerifyFailure selects how the machine outliner degrades when its
	// verifier rejects a round: outline.VerifyAbort ("" or "abort", the
	// default) fails the build, outline.VerifyRollbackRound sheds the
	// offending round and keeps the previous rounds' wins,
	// outline.VerifyDisableOutlining sheds all outlining for that program.
	OnVerifyFailure string
	// Fault arms deterministic fault injection (internal/fault) at the
	// pipeline's fault points: cache disk I/O, worker task start,
	// per-function codegen, outlining rounds, artifact decoding. When set,
	// the build cache opens privately (never the process-shared handle) and
	// the schedule participates in cache fingerprints, so a faulted build
	// can neither publish nor consume a clean build's artifacts. nil
	// disables injection at zero cost.
	Fault *fault.Injector
	// Profile supplies an execution profile from an instrumented run
	// (-profile-in): outliner candidate remarks gain execution counts and
	// hot/cold verdicts, and cold-only gating becomes possible. The profile
	// digest joins the machine-stage cache fingerprint, so profiled builds
	// never collide with clean builds' cache entries.
	Profile *profile.Profile
	// OutlineColdOnly restricts machine outlining to cold functions
	// (-outline-cold-only); see outline.Options.ColdOnly. Without a Profile
	// or with OutlineColdThreshold <= 0 it gates nothing and the image is
	// byte-identical to an unprofiled build.
	OutlineColdOnly bool
	// OutlineColdThreshold is the entry count at which a function counts as
	// hot (-outline-cold-threshold).
	OutlineColdThreshold int64
	// Layout selects the profile-guided function-ordering policy applied to
	// the final program before image build (-layout): layout.None (or ""),
	// layout.HotCold, or layout.C3. Active policies need a Profile to act on
	// and are inert without one. The policy joins the machine-stage cache
	// fingerprint alongside the profile digest.
	Layout string
}

// BuildErrors is a keep-going build's aggregated failure: one error per
// failed module, in module order. Unwrap exposes them to errors.Is/As, so a
// structured diagnostic buried in any module (a *par.PanicError, a
// *verify.Error, an injected *fault.Error) stays recognizable.
type BuildErrors struct {
	Errs []error
}

func (e *BuildErrors) Error() string {
	if len(e.Errs) == 1 {
		return e.Errs[0].Error()
	}
	return fmt.Sprintf("%d modules failed; first: %v", len(e.Errs), e.Errs[0])
}

// Unwrap exposes the per-module errors to the errors package.
func (e *BuildErrors) Unwrap() []error { return e.Errs }

// OSize is the production configuration the paper ships: whole program,
// five rounds of repeated machine outlining, all mid-level passes, both
// linker fixes.
var OSize = Config{
	WholeProgram:       true,
	OutlineRounds:      5,
	SILOutline:         true,
	SpecializeClosures: true,
	MergeFunctions:     true,
	PreserveDataLayout: true,
	SplitGCMetadata:    true,
}

// Default is the default iOS pipeline with Swift 5.2 behaviour: per-module
// compilation, per-module outlining (one round).
var Default = Config{
	OutlineRounds: 1,
	SILOutline:    true,
}

// Source is one source module: named SwiftLite files.
type Source struct {
	Name  string
	Files map[string]string
}

// Result is a finished build.
type Result struct {
	Prog    *mir.Program
	Image   *binimg.Image
	Outline *outline.Stats
	// Layout reports what the function-layout pass did (nil when Config.Layout
	// was unset). PreLayoutImage is the image the program would have produced
	// without the reorder — the "before" of a before/after PageTouch report —
	// built only when the pass actually reordered (active policy + profile).
	Layout         *layout.Stats
	PreLayoutImage *binimg.Image
	// Timings maps stage name to total time, derived from the tracer's
	// stage spans: a stage that runs more than once — per outlining round,
	// or per module in the default pipeline — reports the sum of its runs,
	// never just the last one.
	Timings map[string]time.Duration
}

// CodeSize returns the code-section size in bytes.
func (r *Result) CodeSize() int { return r.Image.CodeSize }

// BinarySize returns the whole image size in bytes.
func (r *Result) BinarySize() int { return r.Image.TotalSize }

// CompileToSIR runs the frontend and SILGen (plus SIL passes) for one
// module. imports may be nil for a self-contained module.
func CompileToSIR(src Source, cfg Config, imports *frontend.Imports) (*sir.Module, error) {
	files, err := ParseSource(src)
	if err != nil {
		return nil, err
	}
	cfg.Tracer.Add("frontend/files", int64(len(files)))
	prog, err := frontend.CheckModule(src.Name, imports, files...)
	if err != nil {
		return nil, err
	}
	sm, err := sir.Generate(prog)
	if err != nil {
		return nil, err
	}
	cfg.Tracer.Add("frontend/sir_functions", int64(len(sm.Funcs)))
	if cfg.SpecializeClosures {
		sir.SpecializeClosures(sm)
	}
	if cfg.SILOutline {
		sir.OutlinePass(sm)
	}
	if cfg.Verify {
		if err := sm.Verify(); err != nil {
			return nil, fmt.Errorf("after SIL passes: %w", err)
		}
	}
	return sm, nil
}

type namedFile struct{ name, text string }

func sortedFileList(files map[string]string) []namedFile {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sortStrings(names)
	out := make([]namedFile, 0, len(names))
	for _, n := range names {
		out = append(out, namedFile{name: n, text: files[n]})
	}
	return out
}

func sortStrings(ss []string) { sort.Strings(ss) }

// ParseSource parses a source module's files in deterministic order.
func ParseSource(src Source) ([]*frontend.File, error) {
	var files []*frontend.File
	for _, nf := range sortedFileList(src.Files) {
		f, err := frontend.ParseFile(nf.name, nf.text)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CompileToLLIR lowers one source module to LLIR with per-module mid-level
// cleanup (always-on CFG simplification and DCE, like -Osize).
func CompileToLLIR(src Source, cfg Config, imports *frontend.Imports) (*llir.Module, error) {
	sm, err := CompileToSIR(src, cfg, imports)
	if err != nil {
		return nil, err
	}
	lm, err := llir.FromSIR(sm)
	if err != nil {
		return nil, err
	}
	for _, f := range lm.Funcs {
		llir.SimplifyCFG(f)
		llir.DCE(f)
	}
	if cfg.Verify {
		if err := lm.Verify(); err != nil {
			return nil, fmt.Errorf("after per-module opt: %w", err)
		}
	}
	return lm, nil
}

// Build compiles sources through the configured pipeline. Every module sees
// the public declarations of every other module (as if all swiftmodule
// interfaces were imported).
//
// Build never lets a worker (or its own) panic escape as a process crash: a
// panic anywhere in the build surfaces as an error carrying a structured
// *par.PanicError (stage, task index, stack) in its chain. A cancelled
// cfg.Ctx surfaces the same way, as an error wrapping the context's error.
func Build(sources []Source, cfg Config) (res *Result, err error) {
	tr := obs.Ensure(cfg.Tracer)
	cfg.Tracer = tr
	ctx, cancel := buildContext(&cfg)
	defer cancel()
	defer mirrorFaults(tr, cfg.Fault)
	defer func() {
		if r := recover(); r != nil {
			tr.Add("fault/recovered_panics", 1)
			res, err = nil, fmt.Errorf("pipeline: %w", par.Recovered("build", -1, r))
		}
	}()
	mark := tr.Mark()
	front := tr.StartStage("frontend+permodule", 0)

	// Parse every module in parallel, then build the whole-build import index
	// serially: the index shares AST nodes across modules and synthesizes
	// missing memberwise initializers in place, so it is constructed once
	// before workers start; after this point the imported declarations are
	// only read. Under KeepGoing every module is still parsed (and every
	// parse error reported), but a parse failure remains fatal: the import
	// index needs all modules' declarations.
	stepCancel(cfg, cancel, "parse")
	parseModule := func(lane, i int) ([]*frontend.File, error) {
		cfg.Fault.MaybePanic(fault.WorkerTask, "parse "+sources[i].Name)
		files, perr := ParseSource(sources[i])
		if perr != nil {
			return nil, fmt.Errorf("pipeline: module %s: %w", sources[i].Name, perr)
		}
		return files, nil
	}
	var parsed [][]*frontend.File
	if cfg.KeepGoing {
		var errs []error
		parsed, errs = par.MapAllLanesStageCtx(ctx, "parse", cfg.Parallelism, len(sources), parseModule)
		if kerr := gatherKeepGoing(tr, errs); kerr != nil {
			front.End()
			return nil, kerr
		}
	} else {
		parsed, err = par.MapLanesStageCtx(ctx, "parse", cfg.Parallelism, len(sources), parseModule)
		if err != nil {
			front.End()
			notePanics(tr, err)
			return nil, err
		}
	}
	ix := frontend.NewImportsIndex(parsed...)
	imports := make([]*frontend.Imports, len(sources))
	for i := range sources {
		imports[i] = ix.For(i)
	}

	bc, err := OpenBuildCache(cfg)
	if err != nil {
		front.End()
		return nil, err
	}
	var keys *ModuleKeys
	if bc != nil {
		keys = ComputeModuleKeys(sources, parsed, tr)
	}

	// Each module compiles to LLIR independently given its import set
	// (CompileToLLIR re-parses the module's own files, so every worker
	// type-checks private ASTs); results are collected in source order, so
	// irlink.Link sees the same module sequence as the serial build.
	stepCancel(cfg, cancel, "frontend")
	lowerModule := func(lane, i int) (*llir.Module, error) {
		cfg.Fault.MaybePanic(fault.WorkerTask, sources[i].Name)
		if err := workerHang(ctx, cfg, sources[i].Name); err != nil {
			return nil, fmt.Errorf("pipeline: module %s: %w", sources[i].Name, err)
		}
		sp := tr.StartSpan("frontend "+sources[i].Name, lane+1)
		defer sp.End()
		lm, lerr := bc.CompileToLLIRCached(sources[i], cfg, imports[i], i, keys, lane+1)
		if lerr != nil {
			return nil, fmt.Errorf("pipeline: module %s: %w", sources[i].Name, lerr)
		}
		return lm, nil
	}
	var mods []*llir.Module
	if cfg.KeepGoing {
		var errs []error
		mods, errs = par.MapAllLanesStageCtx(ctx, "frontend", cfg.Parallelism, len(sources), lowerModule)
		front.End()
		if kerr := gatherKeepGoing(tr, errs); kerr != nil {
			return nil, kerr
		}
	} else {
		mods, err = par.MapLanesStageCtx(ctx, "frontend", cfg.Parallelism, len(sources), lowerModule)
		front.End()
		if err != nil {
			notePanics(tr, err)
			return nil, err
		}
	}
	res, err = BuildFromLLIR(mods, cfg)
	if err != nil {
		return nil, err
	}
	res.Timings = tr.StageTotalsSince(mark)
	return res, nil
}

// buildContext resolves cfg.Ctx (nil means Background) and, when fault
// injection is armed, wraps it in a cancellable child so CancelStep
// decisions can cancel the build at a stage boundary. cfg.Ctx is rewritten
// in place so every downstream consumer — cache probes, worker pools,
// BuildFromLLIR when called from Build — observes the same cancellation.
func buildContext(cfg *Config) (context.Context, context.CancelFunc) {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Fault == nil {
		cfg.Ctx = ctx
		return ctx, func() {}
	}
	ctx, cancel := context.WithCancel(ctx)
	cfg.Ctx = ctx
	return ctx, cancel
}

// stepCancel consults the CancelStep fault site at a stage boundary,
// cancelling the build's context when the schedule says so — the
// cancel-at-step-N chaos drill.
func stepCancel(cfg Config, cancel context.CancelFunc, step string) {
	if cfg.Fault.MaybeCancelPoint(fault.CancelStep, "step:"+step) {
		cancel()
	}
}

// workerHang consults the WorkerHang fault site at a worker task's start: a
// scheduled hang blocks until the build's context is cancelled, then fails
// with the context's error — the hung-compiler drill deadline propagation
// exists to bound. Without a deadline or cancellation the hang is unbounded,
// which is why chaos schedules only fire it under EnableDisruptive.
func workerHang(ctx context.Context, cfg Config, key string) error {
	if !cfg.Fault.MaybeHangPoint(fault.WorkerHang, key) {
		return nil
	}
	<-ctx.Done()
	return fmt.Errorf("hung worker cancelled: %w", ctx.Err())
}

// ctxErr converts a done build context into the error reported at a stage
// boundary (nil while the build may continue).
func ctxErr(ctx context.Context, where string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("pipeline: %s: build cancelled: %w", where, err)
	}
	return nil
}

// gatherKeepGoing folds a keep-going stage's error slice (one slot per task)
// into a single *BuildErrors, nil when every task succeeded. Recovered worker
// panics and the failure count land on the build's counters.
func gatherKeepGoing(tr *obs.Tracer, errs []error) error {
	var be BuildErrors
	for _, e := range errs {
		if e != nil {
			be.Errs = append(be.Errs, e)
		}
	}
	if len(be.Errs) == 0 {
		return nil
	}
	notePanics(tr, be.Errs...)
	tr.Add("build/keep_going_errors", int64(len(be.Errs)))
	return &be
}

// notePanics counts the errors whose chain carries a recovered worker panic,
// keeping panic isolation visible in -summary even when the build fails.
func notePanics(tr *obs.Tracer, errs ...error) {
	for _, e := range errs {
		var pe *par.PanicError
		if errors.As(e, &pe) {
			tr.Add("fault/recovered_panics", 1)
		}
	}
}

// mirrorFaults drains the injector's per-site injection counts into the
// build's counters, so -summary shows what a chaos schedule actually fired.
func mirrorFaults(tr *obs.Tracer, inj *fault.Injector) {
	for name, n := range inj.DrainCounters() {
		tr.Add(name, n)
	}
}

// BuildFromLLIR finishes a build from per-module LLIR (used by the synthetic
// app generator, which fabricates IR directly). Like Build, it converts any
// panic — its own or a worker's — into an error carrying a structured
// *par.PanicError instead of crashing the process.
func BuildFromLLIR(mods []*llir.Module, cfg Config) (res *Result, err error) {
	tr := obs.Ensure(cfg.Tracer)
	cfg.Tracer = tr
	ctx, cancel := buildContext(&cfg)
	defer cancel()
	defer mirrorFaults(tr, cfg.Fault)
	defer func() {
		if r := recover(); r != nil {
			tr.Add("fault/recovered_panics", 1)
			res, err = nil, fmt.Errorf("pipeline: %w", par.Recovered("build", -1, r))
		}
	}()
	mark := tr.Mark()
	var prog *mir.Program

	if cfg.WholeProgram {
		stepCancel(cfg, cancel, "link")
		if err := ctxErr(ctx, "before llvm-link"); err != nil {
			return nil, err
		}
		sp := tr.StartStage("llvm-link", 0)
		merged, err := irlink.Link(mods, irlink.Options{
			SplitGCMetadata:     cfg.SplitGCMetadata,
			PreserveModuleOrder: cfg.PreserveDataLayout,
			Tracer:              tr,
		})
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("pipeline: irlink: %w", err)
		}

		sp = tr.StartStage("opt", 0)
		if cfg.MergeFunctions {
			llir.MergeFunctions(merged)
		}
		if cfg.FMSA {
			llir.MergeBySequenceAlignment(merged)
		}
		par.DoStage("opt", cfg.Parallelism, len(merged.Funcs), func(i int) {
			llir.SimplifyCFG(merged.Funcs[i])
			llir.DCE(merged.Funcs[i])
		})
		if cfg.Verify {
			if err := merged.Verify(); err != nil {
				sp.End()
				return nil, fmt.Errorf("pipeline: after whole-program opt: %w", err)
			}
		}
		sp.End()

		stepCancel(cfg, cancel, "llc")
		if err := ctxErr(ctx, "before codegen"); err != nil {
			return nil, err
		}
		sp = tr.StartStage("llc", 0)
		p, err := codegen.CompileTraced(merged, cfg.Parallelism, tr, 1, cfg.Fault)
		sp.End()
		if err != nil {
			notePanics(tr, err)
			return nil, err
		}
		if cfg.Verify {
			if err := runVerify(p, llir.RuntimeSyms, tr, "after codegen"); err != nil {
				return nil, err
			}
		}
		prog = p
	} else {
		// Default pipeline: per-module codegen (and per-module outlining),
		// then the system linker concatenates machine code. Modules are
		// independent here — that is exactly the parallelism the paper's
		// whole-program pipeline forfeits — so fan out one worker per
		// module (inner stages stay serial to avoid oversubscription) and
		// concatenate the parts in module order. Each worker's spans land
		// on its own trace lane; the per-module "machine-outline" stage
		// spans emitted inside workers sum into one total.
		stepCancel(cfg, cancel, "llc")
		sp := tr.StartStage("llc", 0)
		bc, err := OpenBuildCache(cfg)
		if err != nil {
			sp.End()
			return nil, err
		}
		extern := externSyms(mods) // shared, read-only across workers
		var crossRefs map[string]bool
		if cfg.MergeFunctions || cfg.FMSA {
			// Per-module merging must not delete a function some other
			// module calls: the system link would then resolve that call to
			// nothing. Symbols referenced across module boundaries keep
			// their definitions.
			crossRefs = crossModuleRefs(mods)
		}
		compileModule := func(lane, i int) (*mir.Program, error) {
			lm := mods[i]
			cfg.Fault.MaybePanic(fault.WorkerTask, lm.Name)
			if err := workerHang(ctx, cfg, lm.Name); err != nil {
				return nil, fmt.Errorf("pipeline: module %s: %w", lm.Name, err)
			}
			wsp := tr.StartSpan("module "+lm.Name, lane+1)
			defer wsp.End()
			// Probe the cache before touching lm: the key is derived from
			// the module's pre-merge canonical encoding, and a hit skips
			// merging, codegen, outlining, and the per-module verify (the
			// final whole-program verify still runs). The replayed counters
			// keep counter-derived reports equal between cold and warm runs.
			var mkey cache.Key
			if bc.enabled() {
				csp := tr.StartSpan("cache machine "+lm.Name, lane+1)
				mkey = machineKey(artifact.EncodeModule(lm), crossRefs, lm, cfg)
				p, st, tier, ok := bc.getMachine(ctx, mkey, tr)
				csp.Arg("hit", ok).Arg("tier", tier).End()
				if ok {
					replayOutlineCounters(tr, st)
					return p, nil
				}
			}
			// The miss path: merge, codegen, outline, verify. machineMiss
			// runs it directly, or — in service mode — behind the
			// single-flight layer so concurrent builds compute each key once.
			// It is invoked at most once per module (it mutates lm in place).
			compute := func() (*mir.Program, *outline.Stats, error) {
				if cfg.MergeFunctions {
					llir.MergeFunctionsKeeping(lm, crossRefs)
				}
				if cfg.FMSA {
					llir.MergeBySequenceAlignmentKeeping(lm, crossRefs)
				}
				p, cerr := codegen.CompileTraced(lm, 1, tr, lane+1, cfg.Fault)
				if cerr != nil {
					return nil, nil, fmt.Errorf("pipeline: module %s: %w", lm.Name, cerr)
				}
				var st *outline.Stats
				if cfg.OutlineRounds > 0 {
					st, cerr = outline.Outline(p, outline.Options{
						Rounds:          cfg.OutlineRounds,
						FlatCostModel:   cfg.FlatOutlineCost,
						FuncPrefix:      "OUTLINED_FUNCTION_" + lm.Name + "_",
						Verify:          cfg.Verify,
						ExternSyms:      extern,
						Parallelism:     1,
						Tracer:          tr,
						TraceLane:       lane + 1,
						RemarkModule:    lm.Name,
						OnVerifyFailure: cfg.OnVerifyFailure,
						Fault:           cfg.Fault,
						Profile:         cfg.Profile,
						ColdOnly:        cfg.OutlineColdOnly,
						ColdThreshold:   cfg.OutlineColdThreshold,
					})
					if cerr != nil {
						return nil, nil, fmt.Errorf("pipeline: module %s: %w", lm.Name, cerr)
					}
				}
				if cfg.Verify {
					// Cross-module references are external at this point,
					// exactly as the system linker would see them.
					if err := runVerify(p, extern, tr, "module "+lm.Name+" after codegen"); err != nil {
						return nil, nil, err
					}
				}
				return p, st, nil
			}
			return bc.machineMiss(ctx, mkey, tr, compute)
		}
		var parts []*mir.Program
		if cfg.KeepGoing {
			var errs []error
			parts, errs = par.MapAllLanesStageCtx(ctx, "llc", cfg.Parallelism, len(mods), compileModule)
			sp.End()
			if kerr := gatherKeepGoing(tr, errs); kerr != nil {
				return nil, kerr
			}
		} else {
			parts, err = par.MapLanesStageCtx(ctx, "llc", cfg.Parallelism, len(mods), compileModule)
			sp.End()
			if err != nil {
				notePanics(tr, err)
				return nil, err
			}
		}
		sp = tr.StartStage("ld", 0)
		prog = linkMachine(parts)
		sp.End()
	}

	res = &Result{Prog: prog}

	if cfg.WholeProgram && cfg.CanonicalizeSequences {
		outline.CanonicalizeCommutative(prog)
	}
	if cfg.WholeProgram && cfg.OutlineRounds > 0 {
		stepCancel(cfg, cancel, "outline")
		if err := ctxErr(ctx, "before outlining"); err != nil {
			return nil, err
		}
		// No enclosing stage span here: the outliner emits one
		// "machine-outline" stage span per round itself, and stage totals
		// sum them into the Timings entry.
		st, oerr := outline.Outline(prog, outline.Options{
			Rounds:          cfg.OutlineRounds,
			FlatCostModel:   cfg.FlatOutlineCost,
			Verify:          cfg.Verify,
			ExternSyms:      llir.RuntimeSyms,
			Parallelism:     cfg.Parallelism,
			Tracer:          tr,
			OnVerifyFailure: cfg.OnVerifyFailure,
			Fault:           cfg.Fault,
			Profile:         cfg.Profile,
			ColdOnly:        cfg.OutlineColdOnly,
			ColdThreshold:   cfg.OutlineColdThreshold,
		})
		if oerr != nil {
			return nil, oerr
		}
		res.Outline = st
	}
	if cfg.LayoutOutlined {
		outline.LayoutOutlined(prog)
	}
	if cfg.Layout != "" {
		// Profile-guided function layout (internal/layout) runs last over the
		// final program, so it sees every outlined function and its order is
		// exactly the image's. When the pass will actually reorder, the
		// pre-reorder image is kept as the before/after baseline.
		sp := tr.StartStage("layout", 0)
		if cfg.Layout != layout.None && cfg.Profile != nil {
			res.PreLayoutImage = binimg.Build(prog)
		}
		st, lerr := layout.Apply(prog, layout.Options{
			Policy:  cfg.Layout,
			Profile: cfg.Profile,
			Tracer:  tr,
		})
		sp.End()
		if lerr != nil {
			return nil, fmt.Errorf("pipeline: %w", lerr)
		}
		res.Layout = st
	}

	if err := ctxErr(ctx, "before image build"); err != nil {
		return nil, err
	}
	if cfg.Verify {
		if err := runVerify(prog, llir.RuntimeSyms, tr, "final machine program"); err != nil {
			return nil, err
		}
	}
	res.Image = binimg.Build(prog)
	if cfg.Verify {
		rep := verify.Image(res.Image, prog)
		tr.Add("verify/violations", int64(len(rep.Violations)))
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("pipeline: image layout: %w", err)
		}
	}
	if res.PreLayoutImage != nil {
		// Score the reorder at binimg's native page size so the improvement is
		// visible in counters (and hence -summary) without rerunning PageTouch.
		dev := perf.Device{PageSize: binimg.PageSize}
		before := perf.PageTouch(res.PreLayoutImage, cfg.Profile, dev)
		after := perf.PageTouch(res.Image, cfg.Profile, dev)
		tr.Set("layout/cross_page_calls_before", before.CrossPageCalls)
		tr.Set("layout/cross_page_calls_after", after.CrossPageCalls)
		tr.Set("layout/touched_pages_before", int64(before.TouchedPages))
		tr.Set("layout/touched_pages_after", int64(after.TouchedPages))
	}
	res.Timings = tr.StageTotalsSince(mark)
	return res, nil
}

// runVerify runs the machine verifier over prog, records its pass counts on
// the build's counters (surfaced by -summary), and converts violations into
// a build error naming the pipeline stage that produced them.
func runVerify(prog *mir.Program, extern map[string]bool, tr *obs.Tracer, what string) error {
	rep := verify.Program(prog, extern)
	tr.Add("verify/functions", int64(rep.FuncsChecked))
	tr.Add("verify/violations", int64(len(rep.Violations)))
	if err := rep.Err(); err != nil {
		return fmt.Errorf("pipeline: %s: %w", what, err)
	}
	return nil
}

func externSyms(mods []*llir.Module) map[string]bool {
	syms := make(map[string]bool, len(llir.RuntimeSyms))
	for s := range llir.RuntimeSyms {
		syms[s] = true
	}
	// Cross-module references are external during per-module outlining.
	for _, m := range mods {
		for _, f := range m.Funcs {
			syms[f.Name] = true
		}
		for _, g := range m.Globals {
			syms[g.Name] = true
		}
	}
	return syms
}

// crossModuleRefs returns the function names referenced (by call or taken
// address) from a module other than the one defining them — the symbols a
// per-module transformation must leave resolvable for the system link.
func crossModuleRefs(mods []*llir.Module) map[string]bool {
	defIn := make(map[string]string)
	for _, m := range mods {
		for _, f := range m.Funcs {
			defIn[f.Name] = m.Name
		}
	}
	refs := make(map[string]bool)
	for _, m := range mods {
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Insts {
					in := &b.Insts[i]
					if in.Op != llir.Call && in.Op != llir.GlobalAddr {
						continue
					}
					if def, ok := defIn[in.Sym]; ok && def != m.Name {
						refs[in.Sym] = true
					}
				}
			}
		}
	}
	return refs
}

// linkMachine concatenates per-module machine programs in module order (the
// system linker's job in the default pipeline).
func linkMachine(parts []*mir.Program) *mir.Program {
	out := mir.NewProgram()
	for _, p := range parts {
		for _, f := range p.Funcs {
			out.AddFunc(f)
		}
		for _, g := range p.Globals {
			out.AddGlobal(g)
		}
	}
	return out
}

// ParseSourceTokens lexes a module's files (deterministic order) without
// parsing — used by the source-level clone detector.
func ParseSourceTokens(src Source) (map[string][]frontend.Token, error) {
	out := make(map[string][]frontend.Token, len(src.Files))
	for _, nf := range sortedFileList(src.Files) {
		toks, err := frontend.NewLexer(nf.name, nf.text).Lex()
		if err != nil {
			return nil, err
		}
		out[nf.name] = toks
	}
	return out, nil
}
