package pipeline_test

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/cache"
	"outliner/internal/obs"
	"outliner/internal/pipeline"
)

// scaleModules is the corpus size for the invalidation-precision tests. The
// default is CI-sized but still large enough that the ≥99% warm-hit-rate
// acceptance bound is meaningful (it needs ≥101 modules); the nightly
// paper-scale job sets SCALE_MODULES=476 to run them at the paper's size.
func scaleModules(t *testing.T) int {
	t.Helper()
	if env := os.Getenv("SCALE_MODULES"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			t.Fatalf("SCALE_MODULES=%q: %v", env, err)
		}
		return n
	}
	return 120
}

// scaleCorpus generates an UberRider corpus with at least n modules.
func scaleCorpus(t *testing.T, n int) []appgen.Module {
	t.Helper()
	return appgen.Generate(appgen.UberRider, appgen.ScaleForModules(appgen.UberRider, n))
}

// buildScaled builds a generated corpus and returns its counters.
func buildScaled(t *testing.T, mods []appgen.Module, cfg pipeline.Config) map[string]int64 {
	t.Helper()
	tr := obs.New()
	cfg.Tracer = tr
	if _, err := appgen.BuildGenerated(mods, cfg); err != nil {
		t.Fatalf("BuildGenerated: %v", err)
	}
	return tr.Counters()
}

// The headline incremental-build property at paper scale: editing one
// module's function bodies re-lowers only that module. Every other module's
// llir key — its own source hash plus the other modules' exported-interface
// digests — is unchanged, so the warm hit rate of the rebuild is
// (modules-1)/modules ≥ 99%.
func TestScaleBodyEditWarmHitRate(t *testing.T) {
	mods := scaleCorpus(t, scaleModules(t))
	dir := t.TempDir()
	defer cache.Forget(dir)
	cfg := pipeline.Default
	cfg.CacheDir = dir

	cold := buildScaled(t, mods, cfg)
	if cold["cache/llir/misses"] != int64(len(mods)) || cold["cache/llir/hits"] != 0 {
		t.Fatalf("cold build counters: %+v", cold)
	}

	target := mods[len(mods)/2].Name
	edited := appgen.EditBody(mods, target, "warm-hit-test")
	counters := buildScaled(t, edited, cfg)
	hits, misses := counters["cache/llir/hits"], counters["cache/llir/misses"]
	if misses != 1 || hits != int64(len(mods))-1 {
		t.Fatalf("body edit of %s: llir hits=%d misses=%d, want %d/1",
			target, hits, misses, len(mods)-1)
	}
	if rate := float64(hits) / float64(hits+misses); rate < 0.99 {
		t.Fatalf("warm hit rate %.4f < 0.99 after a one-module body edit", rate)
	}
	if counters["cache/key_hash_ns"] == 0 {
		t.Fatal("cache/key_hash_ns not recorded")
	}
}

// The converse precision property: editing a module's exported interface
// (here: adding an exported function) must rebuild its importers. SwiftLite
// modules import every other module's exports, so all llir entries miss —
// nothing is allowed to serve a stale view of the changed interface.
func TestScaleInterfaceEditRebuildsImporters(t *testing.T) {
	mods := scaleCorpus(t, 40)
	dir := t.TempDir()
	defer cache.Forget(dir)
	cfg := pipeline.Default
	cfg.CacheDir = dir
	buildScaled(t, mods, cfg)

	target := mods[len(mods)/2].Name
	edited := appgen.EditInterface(mods, target, "iface")
	counters := buildScaled(t, edited, cfg)
	if counters["cache/llir/hits"] != 0 || counters["cache/llir/misses"] != int64(len(mods)) {
		t.Fatalf("interface edit of %s: llir hits=%d misses=%d, want 0/%d",
			target, counters["cache/llir/hits"], counters["cache/llir/misses"], len(mods))
	}
}

// Module keys are deterministic across parallelism levels and process
// restarts: a corpus built cold at -j4 must warm-hit completely at -j1 from
// the disk tier (the memory tier is dropped to simulate a new process), and
// every build of the same corpus — uncached, cold, or warm — must produce a
// byte-identical image. Runs on the pristine corpus and on a body-edited one.
func TestScaleDeterminismAcrossParallelismAndRestart(t *testing.T) {
	mods := scaleCorpus(t, 40)
	for name, corpus := range map[string][]appgen.Module{
		"pristine": mods,
		"edited":   appgen.EditBody(mods, mods[3].Name, "determinism"),
	} {
		t.Run(name, func(t *testing.T) {
			listing := func(cfg pipeline.Config) (string, map[string]int64) {
				tr := obs.New()
				cfg.Tracer = tr
				res, err := appgen.BuildGenerated(corpus, cfg)
				if err != nil {
					t.Fatalf("BuildGenerated: %v", err)
				}
				var buf bytes.Buffer
				if err := res.WriteImageListing(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.String(), tr.Counters()
			}
			cfg := pipeline.Default
			cfg.Parallelism = 1
			ref, _ := listing(cfg)

			dir := t.TempDir()
			defer cache.Forget(dir)
			cold := cfg
			cold.CacheDir = dir
			cold.Parallelism = 4
			if got, _ := listing(cold); got != ref {
				t.Fatal("cold -j4 cached build differs from uncached -j1 build")
			}

			c, err := cache.Shared(dir)
			if err != nil {
				t.Fatal(err)
			}
			c.DropMemory() // a fresh process would see only the disk tier

			warm := cfg
			warm.CacheDir = dir
			warm.Parallelism = 1
			got, counters := listing(warm)
			if got != ref {
				t.Fatal("disk-warm -j1 build differs from uncached -j1 build")
			}
			if counters["cache/misses"] != 0 || counters["cache/hits"] != counters["cache/probes"] {
				t.Fatalf("keys drifted across -j or restart: %+v", counters)
			}
		})
	}
}
