package pipeline_test

import (
	"bytes"
	"testing"

	"outliner/internal/exec"
	"outliner/internal/obs"
	"outliner/internal/pipeline"
	"outliner/internal/profile"
)

// collectMainProfile builds srcs under cfg and runs main on the result with
// instrumentation on, returning the collected profile and the build.
func collectMainProfile(t *testing.T, cfg pipeline.Config, srcs []pipeline.Source) (*profile.Profile, *pipeline.Result) {
	t.Helper()
	res, err := pipeline.Build(srcs, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	col := profile.NewCollector()
	m, err := exec.New(res.Prog, exec.Options{MaxSteps: 10_000_000, Profile: col})
	if err != nil {
		t.Fatalf("exec.New: %v", err)
	}
	if _, err := m.Run("main"); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return col.Profile(), res
}

// Profiles are part of the determinism contract: the same program run the
// same way must serialize to byte-identical profile files regardless of the
// build's parallelism and across process restarts (simulated here by fully
// independent build+run cycles).
func TestProfileByteIdenticalAcrossParallelismAndRestarts(t *testing.T) {
	srcs := cacheTestSources()
	var want []byte
	for _, jobs := range []int{1, 4, 4} {
		cfg := pipeline.OSize
		cfg.Verify = true
		cfg.Parallelism = jobs
		p, _ := collectMainProfile(t, cfg, srcs)
		got := p.Encode()
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("-j %d profile differs:\n%s\nvs\n%s", jobs, want, got)
		}
	}
}

// Cold-only gating must be inert — byte-identical output — unless all three
// inputs are present: the flag, a profile, and a positive threshold.
func TestColdOnlyGatingRequiresProfileAndThreshold(t *testing.T) {
	srcs := cacheTestSources()
	base := pipeline.OSize
	base.Verify = true
	wantListing, _ := buildListing(t, base, "", srcs)
	prof, _ := collectMainProfile(t, base, srcs)

	flagOnly := base
	flagOnly.OutlineColdOnly = true
	flagOnly.OutlineColdThreshold = 1
	if got, _ := buildListing(t, flagOnly, "", srcs); got != wantListing {
		t.Error("-outline-cold-only with no profile changed the image")
	}

	zeroThr := base
	zeroThr.OutlineColdOnly = true
	zeroThr.Profile = prof
	if got, _ := buildListing(t, zeroThr, "", srcs); got != wantListing {
		t.Error("cold-only with threshold 0 changed the image")
	}
}

// The acceptance property: a profiled cold-only build never outlines from a
// function at or above the hot threshold. Every selected remark must carry a
// cold verdict, and the gate must actually have fired somewhere.
func TestColdOnlyNeverOutlinesHot(t *testing.T) {
	srcs := cacheTestSources()
	base := pipeline.OSize
	base.Verify = true
	prof, _ := collectMainProfile(t, base, srcs)

	tr := obs.New()
	cfg := base
	cfg.Tracer = tr
	cfg.Profile = prof
	cfg.OutlineColdOnly = true
	cfg.OutlineColdThreshold = 1
	if _, err := pipeline.Build(srcs, cfg); err != nil {
		t.Fatalf("Build: %v", err)
	}
	remarks := tr.Remarks()
	if len(remarks) == 0 {
		t.Fatal("no outliner remarks emitted")
	}
	hotRejects := 0
	for _, r := range remarks {
		if r.Status == "selected" && r.ExecCount >= cfg.OutlineColdThreshold {
			t.Errorf("outlined from hot function: %+v", r)
		}
		if r.Status == "selected" && r.Hotness == "hot" {
			t.Errorf("selected remark carries hot verdict: %+v", r)
		}
		if r.Reason == "hot-function" {
			hotRejects++
		}
	}
	if hotRejects == 0 && tr.Counters()["outline/profile/gated_occurrences"] == 0 {
		t.Error("gate never fired: expected hot-function rejections or gated occurrences")
	}
}

// The profile's identity and the gating policy join the machine-stage cache
// key: a warm unprofiled build must not serve stale artifacts to a profiled
// cold-only build, and two different profiles must not share entries.
func TestProfileJoinsCacheKey(t *testing.T) {
	srcs := cacheTestSources()
	dir := t.TempDir()
	base := pipeline.Config{OutlineRounds: 1, SILOutline: true, Verify: true}
	prof, _ := collectMainProfile(t, base, srcs)

	buildListing(t, base, dir, srcs) // cold: populate
	_, warm := buildListing(t, base, dir, srcs)
	if warm["cache/misses"] != 0 || warm["cache/hits"] == 0 {
		t.Fatalf("unprofiled warm build not fully cached: %v", warm)
	}

	gated := base
	gated.Profile = prof
	gated.OutlineColdOnly = true
	gated.OutlineColdThreshold = 2
	_, c := buildListing(t, gated, dir, srcs)
	if c["cache/machine/misses"] == 0 {
		t.Errorf("profiled cold-only build reused unprofiled machine artifacts: %v", c)
	}

	other := gated
	p2 := profile.New()
	p2.Func("main").Entries = 99
	other.Profile = p2
	_, c2 := buildListing(t, other, dir, srcs)
	if c2["cache/machine/misses"] == 0 {
		t.Errorf("different profile reused another profile's machine artifacts: %v", c2)
	}
}

// A profiled cold-only build is still deterministic under the cache: cold
// and warm runs produce byte-identical listings.
func TestProfiledColdOnlyColdWarmByteIdentical(t *testing.T) {
	srcs := cacheTestSources()
	base := pipeline.Config{OutlineRounds: 1, SILOutline: true, Verify: true}
	prof, _ := collectMainProfile(t, base, srcs)

	cfg := base
	cfg.Profile = prof
	cfg.OutlineColdOnly = true
	cfg.OutlineColdThreshold = 1
	dir := t.TempDir()
	nocache, _ := buildListing(t, cfg, "", srcs)
	cold, _ := buildListing(t, cfg, dir, srcs)
	warm, counters := buildListing(t, cfg, dir, srcs)
	if cold != nocache {
		t.Error("cached cold build differs from uncached build")
	}
	if warm != cold {
		t.Error("warm build differs from cold build")
	}
	if counters["cache/hits"] == 0 {
		t.Errorf("warm profiled build had no cache hits: %v", counters)
	}
}
