package pipeline_test

import (
	"fmt"
	"strings"
	"testing"

	"outliner/internal/exec"
	"outliner/internal/frontend"
	"outliner/internal/llir"
	"outliner/internal/pipeline"
)

// run builds sources with cfg and executes main, returning stdout.
func run(t *testing.T, cfg pipeline.Config, sources ...pipeline.Source) (string, *pipeline.Result) {
	t.Helper()
	cfg.Verify = true
	res, err := pipeline.Build(sources, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m, err := exec.New(res.Prog, exec.Options{})
	if err != nil {
		t.Fatalf("exec.New: %v", err)
	}
	out, err := m.Run("main")
	if err != nil {
		t.Fatalf("Run: %v\noutput so far:\n%s", err, out)
	}
	return out, res
}

func src(name, text string) pipeline.Source {
	return pipeline.Source{Name: name, Files: map[string]string{name + ".sl": text}}
}

// allConfigs is the matrix every semantics test runs under: outputs must be
// identical across pipelines and outlining levels.
var allConfigs = map[string]pipeline.Config{
	"default-noopt":   {},
	"default-osize":   pipeline.Default,
	"wholeprog-0":     {WholeProgram: true, SplitGCMetadata: true, PreserveDataLayout: true},
	"wholeprog-5":     pipeline.OSize,
	"wholeprog-flat":  {WholeProgram: true, OutlineRounds: 5, FlatOutlineCost: true, SplitGCMetadata: true},
	"mergefunc+fmsa":  {WholeProgram: true, OutlineRounds: 3, MergeFunctions: true, FMSA: true, SplitGCMetadata: true},
	"interleave-data": {WholeProgram: true, OutlineRounds: 2, SplitGCMetadata: true, PreserveDataLayout: false},
}

func checkAllConfigs(t *testing.T, want string, sources ...pipeline.Source) {
	t.Helper()
	for name, cfg := range allConfigs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			got, _ := run(t, cfg, sources...)
			if got != want {
				t.Errorf("output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

func TestE2EArithmetic(t *testing.T) {
	checkAllConfigs(t, "7\n-3\n10\n2\n1\ntrue\nfalse\n",
		src("M", `
func main() {
  print(3 + 4)
  print(2 - 5)
  print(2 * 5)
  print(17 / 8)
  print(17 % 8)
  print(3 < 4)
  print(4 <= 3)
}
`))
}

func TestE2EControlFlow(t *testing.T) {
	checkAllConfigs(t, "0\n1\n2\n10\n45\nsmall\n",
		src("M", `
func classify(n: Int) -> String {
  if n < 100 { return "small" }
  return "big"
}
func main() {
  for i in 0 ..< 3 { print(i) }
  var j = 0
  while j < 10 { j = j + 1 }
  print(j)
  var total = 0
  for k in 0 ..< 10 { total = total + k }
  print(total)
  print(classify(n: 5))
}
`))
}

func TestE2EClassesAndRefs(t *testing.T) {
	checkAllConfigs(t, "25\n7\n12\n",
		src("M", `
class Point {
  var x: Int
  var y: Int
  init(x: Int, y: Int) {
    self.x = x
    self.y = y
  }
  func norm() -> Int { return self.x * self.x + self.y * self.y }
}
func main() {
  let p = Point(x: 3, y: 4)
  print(p.norm())
  p.x = 7
  print(p.x)
  let q = p
  q.y = 5
  print(p.x + p.y)
}
`))
}

func TestE2EArraysAndStrings(t *testing.T) {
	checkAllConfigs(t, "3\n9\n4\n104\nhello\n5\n",
		src("M", `
func main() {
  var xs = [1, 2, 3]
  print(xs.count)
  xs[0] = 9
  print(xs[0])
  xs = append(xs, 42)
  print(xs.count)
  let s = "hello"
  print(s[0])
  print(s)
  print(s.count)
}
`))
}

func TestE2ERecursion(t *testing.T) {
	checkAllConfigs(t, "120\n55\n",
		src("M", `
func fact(n: Int) -> Int {
  if n <= 1 { return 1 }
  return n * fact(n: n - 1)
}
func fib(n: Int) -> Int {
  if n < 2 { return n }
  return fib(n: n - 1) + fib(n: n - 2)
}
func main() {
  print(fact(n: 5))
  print(fib(n: 10))
}
`))
}

func TestE2EClosures(t *testing.T) {
	checkAllConfigs(t, "23\n15\n9\n",
		src("M", `
func apply(f: (Int) -> Int, x: Int) -> Int { return f(x) }
func main() {
  let base = 3
  print(apply(f: { (v: Int) -> Int in return v * 2 + base }, x: 10))
  let scale = 5
  let g = { (v: Int) -> Int in return v * scale }
  print(g(3))
  print(apply(f: { (v: Int) -> Int in return v }, x: 9))
}
`))
}

func TestE2EFunctionValues(t *testing.T) {
	checkAllConfigs(t, "8\n27\n",
		src("M", `
func cube(x: Int) -> Int { return x * x * x }
func apply(f: (Int) -> Int, x: Int) -> Int { return f(x) }
func main() {
  print(apply(f: cube, x: 2))
  print(apply(f: cube, x: 3))
}
`))
}

func TestE2EGenerics(t *testing.T) {
	checkAllConfigs(t, "1\ny\n",
		src("M", `
func pick<T>(a: T, b: T, first: Bool) -> T {
  if first { return a }
  return b
}
func main() {
  print(pick<Int>(a: 1, b: 2, first: true))
  print(pick<String>(a: "x", b: "y", first: false))
}
`))
}

func TestE2EThrowsAndCatch(t *testing.T) {
	checkAllConfigs(t, "5\ncaught\n42\nafter\n",
		src("M", `
func risky(x: Int) throws -> Int {
  if x < 0 { throw 42 }
  return x
}
func main() {
  do {
    print(try risky(x: 5))
    print(try risky(x: 0 - 1))
    print(999)
  } catch {
    print("caught")
    print(error)
  }
  print("after")
}
`))
}

func TestE2EThrowingInit(t *testing.T) {
	checkAllConfigs(t, "ok\n3\ncaught 7\n",
		src("M", `
class Config {
  var name: String
  var tag: String
  var level: Int
  init(lvl: Int) throws {
    self.name = try fetch(k: lvl)
    self.tag = try fetch(k: lvl - 1)
    self.level = lvl
  }
}
func fetch(k: Int) throws -> String {
  if k < 0 { throw 7 }
  return "ok"
}
func main() {
  do {
    let c = try Config(lvl: 3)
    print(c.name)
    print(c.level)
    let bad = try Config(lvl: 0)
    print(bad.level)
  } catch {
    print("caught 7")
  }
}
`))
}

func TestE2EOptionalsAndLinkedList(t *testing.T) {
	checkAllConfigs(t, "6\n3\n",
		src("M", `
class Node {
  var value: Int
  var next: Node?
  init(value: Int, next: Node?) {
    self.value = value
    self.next = next
  }
}
func sum(head: Node?) -> Int {
  var total = 0
  var cur = head
  while cur != nil {
    if let n = cur {
      total = total + n.value
      cur = n.next
    }
  }
  return total
}
func count(head: Node?) -> Int {
  if head == nil { return 0 }
  var c = 0
  var cur = head
  while cur != nil {
    c = c + 1
    if let n = cur { cur = n.next }
  }
  return c
}
func main() {
  let c = Node(value: 3, next: nil)
  let b = Node(value: 2, next: c)
  let a = Node(value: 1, next: b)
  print(sum(head: a))
  print(count(head: a))
}
`))
}

func TestE2EShortCircuit(t *testing.T) {
	checkAllConfigs(t, "true\nfalse\n1\ntrue\n",
		src("M", `
func sideEffect(x: Int) -> Bool {
  print(x)
  return x > 0
}
func main() {
  print(true || sideEffect(x: 99))
  print(false && sideEffect(x: 98))
  let r = false || sideEffect(x: 1)
  print(r)
}
`))
}

func TestE2EBreakContinue(t *testing.T) {
	checkAllConfigs(t, "0\n1\n3\n4\n10\n",
		src("M", `
func main() {
  for i in 0 ..< 100 {
    if i == 2 { continue }
    if i == 5 { break }
    print(i)
  }
  var j = 0
  while true {
    j = j + 1
    if j >= 10 { break }
  }
  print(j)
}
`))
}

func TestE2EMultiModule(t *testing.T) {
	lib := src("Lib", `
class Counter {
  var n: Int
  init() { self.n = 0 }
  func bump() -> Int {
    self.n = self.n + 1
    return self.n
  }
}
func makeCounter() -> Counter { return Counter() }
`)
	app := src("App", `
func main() {
  let c = makeCounter()
  print(c.bump())
  print(c.bump())
  print(c.bump())
}
`)
	// Multi-module builds must produce the same output in both pipelines.
	for name, cfg := range allConfigs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			got, _ := run(t, cfg, lib, app)
			if got != "1\n2\n3\n" {
				t.Errorf("got %q", got)
			}
		})
	}
}

// Outlining must shrink a program with repetitive code, and the binary must
// still behave identically (covered above); here we assert the size effect.
func TestOutliningShrinksRepetitiveProgram(t *testing.T) {
	var b strings.Builder
	b.WriteString("class Obj { var a: Int\n var b: Int }\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, `
func helper%d(o: Obj) -> Int {
  let t = Obj(a: o.a + %d, b: o.b)
  return t.a * t.b + o.a
}
`, i, i)
	}
	b.WriteString("func main() {\n  let o = Obj(a: 2, b: 3)\n  var total = 0\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "  total = total + helper%d(o: o)\n", i)
	}
	b.WriteString("  print(total)\n}\n")
	source := src("M", b.String())

	base, err := pipeline.Build([]pipeline.Source{source},
		pipeline.Config{WholeProgram: true, SplitGCMetadata: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := pipeline.Build([]pipeline.Source{source}, pipeline.OSize)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CodeSize() >= base.CodeSize() {
		t.Errorf("outlining did not shrink code: %d -> %d", base.CodeSize(), opt.CodeSize())
	}
	if opt.Outline == nil || opt.Outline.TotalSequences() == 0 {
		t.Error("no sequences outlined")
	}
}

// The §VI-2 story: mixed Swift/Clang metadata fails the whole-program link
// without the attribute-split fix, and links fine with it.
func TestGCMetadataConflict(t *testing.T) {
	build := func(split bool) error {
		objcFiles, err := frontend.ParseFile("objc.sl", "func objcSide() -> Int { return 2 }")
		if err != nil {
			t.Fatal(err)
		}
		swift, err := pipeline.CompileToLLIR(src("SwiftMod", `
func main() { print(objcSide() + 1) }
`), pipeline.Config{}, frontend.NewImports(objcFiles))
		if err != nil {
			t.Fatal(err)
		}
		objc, err := pipeline.CompileToLLIR(src("ObjCMod", `
func objcSide() -> Int { return 2 }
`), pipeline.Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// A clang-produced module stamps a different flag value.
		objc.Metadata["Objective-C Garbage Collection"] = "clang abi-v11.0 bits-0x17"
		_, err = pipeline.BuildFromLLIR([]*llir.Module{swift, objc}, pipeline.Config{
			WholeProgram:    true,
			SplitGCMetadata: split,
			Verify:          true,
		})
		return err
	}
	if err := build(false); err == nil {
		t.Error("mixed-compiler link succeeded without the attribute-split fix")
	} else if !strings.Contains(err.Error(), "Objective-C Garbage Collection") {
		t.Errorf("unexpected error: %v", err)
	}
	if err := build(true); err != nil {
		t.Errorf("link with the fix failed: %v", err)
	}
}
