package layout

import (
	"math/rand"
	"strings"
	"testing"

	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/profile"
)

// genProgram builds a synthetic program of n functions named f00..fNN, each
// with a deterministic pseudo-random body size, in name order.
func genProgram(t *testing.T, n int, rng *rand.Rand) *mir.Program {
	t.Helper()
	var b strings.Builder
	for i := 0; i < n; i++ {
		name := funcName(i)
		b.WriteString("func @" + name + " module \"M\" {\nentry:\n")
		for j := rng.Intn(12) + 2; j > 0; j-- {
			b.WriteString("  MOVZXi $x0, #1\n")
		}
		b.WriteString("  RET\n}\n\n")
	}
	p, err := mir.Parse(b.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func funcName(i int) string {
	return "f" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func names(p *mir.Program) []string {
	out := make([]string, len(p.Funcs))
	for i, f := range p.Funcs {
		out[i] = f.Name
	}
	return out
}

func equalNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// genProfile fabricates a profile with random entries and call edges among
// the program's functions (plus some runtime/dead symbols the pass must
// tolerate).
func genProfile(p *mir.Program, rng *rand.Rand) *profile.Profile {
	prof := profile.New()
	for _, f := range p.Funcs {
		if rng.Intn(3) == 0 {
			continue // leave some functions cold
		}
		fp := prof.Func(f.Name)
		fp.Entries = int64(rng.Intn(500))
		fp.Calls = map[string]int64{}
		for k := rng.Intn(4); k > 0; k-- {
			callee := p.Funcs[rng.Intn(len(p.Funcs))].Name
			fp.Calls[profile.EdgeKey(callee, int64(rng.Intn(64)*4))] = int64(rng.Intn(300) + 1)
		}
		fp.Calls[profile.EdgeKey("swift_release", 8)] = 7 // not in program
	}
	return prof
}

func TestNoneAndEmptyPolicyAreNoOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := genProgram(t, 20, rng)
	prof := genProfile(p, rng)
	before := names(p)
	for _, policy := range []string{"", None} {
		st, err := Apply(p, Options{Policy: policy, Profile: prof})
		if err != nil {
			t.Fatalf("Apply(%q): %v", policy, err)
		}
		if st.Moved != 0 || !equalNames(names(p), before) {
			t.Fatalf("Apply(%q) moved functions", policy)
		}
	}
}

func TestNilProfileIsInert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := genProgram(t, 20, rng)
	before := names(p)
	for _, policy := range []string{HotCold, C3} {
		st, err := Apply(p, Options{Policy: policy})
		if err != nil {
			t.Fatalf("Apply(%q): %v", policy, err)
		}
		if st.Moved != 0 || !equalNames(names(p), before) {
			t.Fatalf("Apply(%q) with nil profile moved functions", policy)
		}
	}
}

func TestUnknownPolicyErrors(t *testing.T) {
	p := genProgram(t, 4, rand.New(rand.NewSource(3)))
	if _, err := Apply(p, Options{Policy: "pettis-hansen", Profile: profile.New()}); err == nil {
		t.Fatal("Apply with unknown policy succeeded")
	}
	if Valid("pettis-hansen") {
		t.Fatal(`Valid("pettis-hansen") = true`)
	}
	for _, ok := range []string{"", None, HotCold, C3} {
		if !Valid(ok) {
			t.Fatalf("Valid(%q) = false", ok)
		}
	}
}

func TestHotColdOrdering(t *testing.T) {
	src := `
func @cold1 module "M" {
entry:
  RET
}

func @warm module "M" {
entry:
  RET
}

func @hottest module "M" {
entry:
  RET
}

func @cold2 module "M" {
entry:
  RET
}
`
	p, err := mir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.New()
	prof.Func("warm").Entries = 5
	prof.Func("hottest").Entries = 100
	st, err := Apply(p, Options{Policy: HotCold, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hottest", "warm", "cold1", "cold2"}
	if !equalNames(names(p), want) {
		t.Fatalf("order = %v, want %v", names(p), want)
	}
	if st.Hot != 2 {
		t.Errorf("Hot = %d, want 2", st.Hot)
	}
}

// TestC3ChainClustering checks the core property: the hottest caller→callee
// chain ends up contiguous, hottest cluster first.
func TestC3ChainClustering(t *testing.T) {
	src := `
func @a module "M" {
entry:
  RET
}

func @mid module "M" {
entry:
  RET
}

func @leaf module "M" {
entry:
  RET
}

func @main module "M" {
entry:
  RET
}
`
	p, err := mir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.New()
	// main -> mid (weight 90, over two call sites), mid -> leaf (weight 80),
	// a -> leaf (weight 10, loses: leaf no longer heads its cluster).
	m := prof.Func("main")
	m.Entries = 1
	m.Calls = map[string]int64{
		profile.EdgeKey("mid", 4):  50,
		profile.EdgeKey("mid", 12): 40,
	}
	mid := prof.Func("mid")
	mid.Entries = 90
	mid.Calls = map[string]int64{profile.EdgeKey("leaf", 4): 80}
	a := prof.Func("a")
	a.Entries = 2
	a.Calls = map[string]int64{profile.EdgeKey("leaf", 4): 10}
	prof.Func("leaf").Entries = 90

	tr := obs.New()
	st, err := Apply(p, Options{Policy: C3, Profile: prof, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"main", "mid", "leaf", "a"}
	if !equalNames(names(p), want) {
		t.Fatalf("order = %v, want %v", names(p), want)
	}
	if st.Merges != 2 {
		t.Errorf("Merges = %d, want 2", st.Merges)
	}
	if st.Clusters != 2 {
		t.Errorf("Clusters = %d, want 2", st.Clusters)
	}

	recs := tr.Remarks()
	if len(recs) != 2 {
		t.Fatalf("got %d remarks, want 2 merge decisions", len(recs))
	}
	for _, r := range recs {
		if r.Pass != "function-layout" || r.Status != "selected" {
			t.Errorf("remark %+v: want selected function-layout", r)
		}
		if r.EdgeWeight == 0 || r.Caller == "" || r.Function == "" {
			t.Errorf("remark %+v: missing edge detail", r)
		}
	}
	if c := tr.Counter("layout/merges"); c != 2 {
		t.Errorf("layout/merges counter = %d, want 2", c)
	}
}

// TestC3ClusterCap checks that a merge overflowing the page cap is rejected
// and shows up as a rejection remark.
func TestC3ClusterCap(t *testing.T) {
	var b strings.Builder
	for _, name := range []string{"big1", "big2"} {
		b.WriteString("func @" + name + " module \"M\" {\nentry:\n")
		for i := 0; i < 10; i++ {
			b.WriteString("  MOVZXi $x0, #1\n")
		}
		b.WriteString("  RET\n}\n\n")
	}
	p, err := mir.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.New()
	f := prof.Func("big1")
	f.Entries = 10
	f.Calls = map[string]int64{profile.EdgeKey("big2", 4): 99}
	prof.Func("big2").Entries = 9

	// Each function is 44 bytes; a 64-byte cap admits either alone but not
	// the pair, so the single candidate merge must be rejected.
	tr := obs.New()
	st, err := Apply(p, Options{Policy: C3, Profile: prof, PageSize: 64, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if st.Merges != 0 || st.CapRejects != 1 {
		t.Fatalf("Merges=%d CapRejects=%d, want 0/1", st.Merges, st.CapRejects)
	}
	recs := tr.Remarks()
	if len(recs) != 1 || recs[0].Status != "rejected" || recs[0].Reason != "cluster-cap" {
		t.Fatalf("remarks = %+v, want one cluster-cap rejection", recs)
	}
}

// TestPermutationProperty is the satellite property test: for many random
// (program, profile) pairs, every policy yields a true permutation — same
// multiset of functions, verifier still clean.
func TestPermutationProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := genProgram(t, rng.Intn(40)+2, rng)
		prof := genProfile(base, rng)
		for _, policy := range []string{HotCold, C3} {
			p := base.Clone()
			if _, err := Apply(p, Options{Policy: policy, Profile: prof}); err != nil {
				t.Fatalf("seed %d %s: %v", seed, policy, err)
			}
			if len(p.Funcs) != len(base.Funcs) {
				t.Fatalf("seed %d %s: %d funcs, want %d", seed, policy, len(p.Funcs), len(base.Funcs))
			}
			seen := map[string]bool{}
			for _, f := range p.Funcs {
				if seen[f.Name] {
					t.Fatalf("seed %d %s: duplicate %q", seed, policy, f.Name)
				}
				seen[f.Name] = true
				if base.Func(f.Name) == nil {
					t.Fatalf("seed %d %s: foreign function %q", seed, policy, f.Name)
				}
				if p.Func(f.Name) != f {
					t.Fatalf("seed %d %s: index stale for %q", seed, policy, f.Name)
				}
			}
			if err := p.Verify(map[string]bool{"swift_release": true}); err != nil {
				t.Fatalf("seed %d %s: verifier: %v", seed, policy, err)
			}
		}
	}
}

// TestDeterministic applies each policy to independent clones and expects
// the exact same order every time — map iteration must never leak through.
func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := genProgram(t, 48, rng)
	prof := genProfile(base, rng)
	for _, policy := range []string{HotCold, C3} {
		var first []string
		for trial := 0; trial < 10; trial++ {
			p := base.Clone()
			if _, err := Apply(p, Options{Policy: policy, Profile: prof}); err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = names(p)
			} else if !equalNames(names(p), first) {
				t.Fatalf("%s: trial %d order differs:\n%v\nvs\n%v", policy, trial, names(p), first)
			}
		}
	}
}

func TestReorderFuncsRejectsBadPermutations(t *testing.T) {
	p := genProgram(t, 4, rand.New(rand.NewSource(9)))

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("short list", func() { p.ReorderFuncs(p.Funcs[:3]) })
	expectPanic("duplicate", func() {
		p.ReorderFuncs([]*mir.Function{p.Funcs[0], p.Funcs[0], p.Funcs[1], p.Funcs[2]})
	})
	expectPanic("foreign", func() {
		alien := p.Funcs[3].Clone()
		p.ReorderFuncs([]*mir.Function{p.Funcs[0], p.Funcs[1], p.Funcs[2], alien})
	})
}
