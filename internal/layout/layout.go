// Package layout implements profile-guided function reordering over the
// final machine program — the code-side twin of the paper's §VI-3 data-layout
// locality fix. Interleaving unrelated globals regressed data page faults;
// the same argument applies to code, so this pass places hot callers on the
// same page as their callees before the image is laid out.
//
// Two profile-driven orderings are implemented behind one policy knob, per
// "Optimizing Function Layout for Mobile Applications" (Hoag/Lee/Mestre/
// Pupyrev) and Codestitcher (Lavaee/Criswell/Ding):
//
//   - C3 — call-chain clustering: every function starts as its own cluster,
//     call edges are visited hottest first (execution-weighted frequency from
//     the profile's layout-independent callee@+offset edges), and the
//     callee's cluster is appended to the caller's whenever the callee still
//     heads its cluster and the merged cluster fits in one page (the
//     Codestitcher cluster cap). Clusters are then emitted hottest first.
//   - HotCold — the split baseline: functions with profiled entries first,
//     in descending entry-count order, then cold functions in original order.
//   - None — today's order, byte-identical to a build without the pass.
//
// Every ordering is a true permutation of the program's functions (enforced
// by mir.ReorderFuncs) and fully deterministic: edge ties break on caller
// then callee symbol name, cluster ties on the cluster's original position,
// so a fixed (program, profile, policy) triple yields one order at any
// parallelism and across process restarts. The pass moves addresses, never
// behavior — execution resolves calls by symbol, so a reordered image is
// execution-equivalent by construction (and difftest proves it).
package layout

import (
	"fmt"
	"sort"

	"outliner/internal/binimg"
	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/profile"
)

// Layout policy names (the -layout flag's vocabulary).
const (
	None    = "none"
	HotCold = "hot-cold"
	C3      = "c3"
)

// Policies lists the valid policy names in documentation order.
func Policies() []string { return []string{None, HotCold, C3} }

// Valid reports whether name is a known policy ("" counts as None: the
// pipeline treats an unset knob as "leave the order alone").
func Valid(name string) bool {
	switch name {
	case "", None, HotCold, C3:
		return true
	}
	return false
}

// Options configures one Apply call.
type Options struct {
	// Policy selects the ordering; "" and None leave the program untouched.
	Policy string
	// Profile supplies the execution counts and call edges both non-trivial
	// policies consume. With a nil profile the pass is inert (no edge or
	// entry data means no evidence to reorder on), mirroring how cold-only
	// outlining gating degrades without a profile.
	Profile *profile.Profile
	// PageSize caps a C3 cluster's byte size (functions merged past one page
	// cannot share it anyway — Codestitcher's rule). 0 means binimg.PageSize.
	PageSize int
	// Tracer receives layout/* counters and one "function-layout" remark per
	// cluster-merge decision. Strictly observational.
	Tracer *obs.Tracer
}

func (o Options) pageSize() int {
	if o.PageSize > 0 {
		return o.PageSize
	}
	return binimg.PageSize
}

// Stats summarizes what one Apply call did.
type Stats struct {
	Policy string
	// Moved counts functions whose index changed.
	Moved int
	// Hot counts functions with profiled entries (HotCold's front section;
	// for C3 the functions contributing cluster weight).
	Hot int
	// Clusters is the final cluster count and Merges the accepted
	// cluster-merge count (C3 only).
	Clusters int
	Merges   int
	// CapRejects counts edges whose merge was rejected because the combined
	// cluster would overflow the page cap (C3 only).
	CapRejects int
}

// Apply reorders prog's functions in place according to the policy and
// returns what it did. The only error is an unknown policy name; every
// degraded input (nil profile, empty program, profile naming no function in
// the program) leaves the order untouched rather than failing the build.
func Apply(prog *mir.Program, opts Options) (*Stats, error) {
	st := &Stats{Policy: opts.Policy}
	if st.Policy == "" {
		st.Policy = None
	}
	if !Valid(opts.Policy) {
		return nil, fmt.Errorf("layout: unknown policy %q (want %s, %s, or %s)", opts.Policy, None, HotCold, C3)
	}
	if st.Policy == None || opts.Profile == nil || len(prog.Funcs) == 0 {
		return st, nil
	}
	var order []*mir.Function
	switch st.Policy {
	case HotCold:
		order = hotColdOrder(prog, opts.Profile, st)
	case C3:
		order = c3Order(prog, opts, st)
	}
	for i, f := range order {
		if prog.Funcs[i] != f {
			st.Moved++
		}
	}
	prog.ReorderFuncs(order)
	emitCounters(opts.Tracer, st)
	return st, nil
}

func emitCounters(tr *obs.Tracer, st *Stats) {
	tr.Add("layout/functions_moved", int64(st.Moved))
	tr.Add("layout/hot_functions", int64(st.Hot))
	if st.Policy == C3 {
		tr.Add("layout/clusters", int64(st.Clusters))
		tr.Add("layout/merges", int64(st.Merges))
		tr.Add("layout/cap_rejects", int64(st.CapRejects))
	}
}

// hotColdOrder is the split baseline: profiled-hot functions by descending
// entry count (name-ascending on ties), then everything cold in original
// order — the classic hot/cold split that shrinks the touched-page set
// without modeling call chains.
func hotColdOrder(prog *mir.Program, p *profile.Profile, st *Stats) []*mir.Function {
	var hot, cold []*mir.Function
	for _, f := range prog.Funcs {
		if p.Count(f.Name) > 0 {
			hot = append(hot, f)
		} else {
			cold = append(cold, f)
		}
	}
	st.Hot = len(hot)
	sort.SliceStable(hot, func(i, j int) bool {
		ci, cj := p.Count(hot[i].Name), p.Count(hot[j].Name)
		if ci != cj {
			return ci > cj
		}
		return hot[i].Name < hot[j].Name
	})
	return append(hot, cold...)
}

// callEdge is one caller→callee pair with its execution-weighted frequency
// (call sites to the same callee sum).
type callEdge struct {
	caller, callee int // function indices in original program order
	weight         int64
}

// cluster is a placement run: functions laid out contiguously, in order.
type cluster struct {
	funcs  []int // function indices, placement order
	bytes  int   // total code size
	weight int64 // summed profiled entry counts — the emission sort key
	min    int   // smallest original index — the deterministic tie-break
}

// c3Order implements call-chain clustering. Each function starts alone;
// edges are processed hottest first, appending the callee's cluster to the
// caller's when the callee still heads its cluster (it has not already been
// glued behind a hotter caller) and the merged cluster fits the page cap.
// Final emission orders clusters by descending weight, original position on
// ties — so unprofiled (weight-0) clusters keep their relative source order.
func c3Order(prog *mir.Program, opts Options, st *Stats) []*mir.Function {
	p, cap, tr := opts.Profile, opts.pageSize(), opts.Tracer
	index := make(map[string]int, len(prog.Funcs))
	for i, f := range prog.Funcs {
		index[f.Name] = i
	}

	// Collect edges in deterministic order: callers in program order, each
	// caller's edges in sorted key order, summed per (caller, callee) pair.
	var edges []callEdge
	for ci, f := range prog.Funcs {
		fp := p.Funcs[f.Name]
		if fp == nil || len(fp.Calls) == 0 {
			continue
		}
		keys := make([]string, 0, len(fp.Calls))
		for k := range fp.Calls {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		perCallee := make(map[int]int64)
		var callees []int
		for _, k := range keys {
			callee, _, ok := profile.SplitEdgeKey(k)
			if !ok {
				continue // hand-edited profile; skip like every other consumer
			}
			ti, inProg := index[callee]
			if !inProg || ti == ci || fp.Calls[k] <= 0 {
				continue // runtime entries, dead-stripped callees, self-calls
			}
			if _, seen := perCallee[ti]; !seen {
				callees = append(callees, ti)
			}
			perCallee[ti] += fp.Calls[k]
		}
		for _, ti := range callees {
			edges = append(edges, callEdge{caller: ci, callee: ti, weight: perCallee[ti]})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.weight != b.weight {
			return a.weight > b.weight
		}
		if prog.Funcs[a.caller].Name != prog.Funcs[b.caller].Name {
			return prog.Funcs[a.caller].Name < prog.Funcs[b.caller].Name
		}
		return prog.Funcs[a.callee].Name < prog.Funcs[b.callee].Name
	})

	// Singleton clusters, then greedy hottest-edge-first merging.
	clusters := make([]*cluster, len(prog.Funcs))
	owner := make([]*cluster, len(prog.Funcs))
	for i, f := range prog.Funcs {
		c := &cluster{funcs: []int{i}, bytes: f.CodeSize(), weight: p.Count(f.Name), min: i}
		if c.weight > 0 {
			st.Hot++
		}
		clusters[i] = c
		owner[i] = c
	}
	type decision struct {
		edge     callEdge
		cluster  int // the extended cluster's min index at merge time
		accepted bool
		reason   string
	}
	var decisions []decision
	for _, e := range edges {
		ca, cb := owner[e.caller], owner[e.callee]
		if ca == cb {
			continue // already placed together by a hotter chain
		}
		if cb.funcs[0] != e.callee {
			continue // callee already glued behind a hotter caller
		}
		if ca.bytes+cb.bytes > cap {
			st.CapRejects++
			decisions = append(decisions, decision{edge: e, cluster: ca.min, reason: "cluster-cap"})
			continue
		}
		ca.funcs = append(ca.funcs, cb.funcs...)
		ca.bytes += cb.bytes
		ca.weight += cb.weight
		if cb.min < ca.min {
			ca.min = cb.min
		}
		for _, fi := range cb.funcs {
			owner[fi] = ca
		}
		cb.funcs = nil // emptied; skipped at emission
		st.Merges++
		decisions = append(decisions, decision{edge: e, cluster: ca.min, accepted: true})
	}

	var live []*cluster
	for _, c := range clusters {
		if len(c.funcs) > 0 {
			live = append(live, c)
		}
	}
	st.Clusters = len(live)
	sort.SliceStable(live, func(i, j int) bool {
		if live[i].weight != live[j].weight {
			return live[i].weight > live[j].weight
		}
		return live[i].min < live[j].min
	})
	order := make([]*mir.Function, 0, len(prog.Funcs))
	for _, c := range live {
		for _, fi := range c.funcs {
			order = append(order, prog.Funcs[fi])
		}
	}

	// Final page assignment, then one remark per merge decision. Addresses
	// are the image's: functions packed back to back from 0 (binimg.Build).
	pageOf := make(map[string]int, len(order))
	addr := 0
	for _, f := range order {
		pageOf[f.Name] = addr / cap
		addr += f.CodeSize()
	}
	recs := make([]obs.Remark, 0, len(decisions))
	for _, d := range decisions {
		r := obs.Remark{
			Pass:       "function-layout",
			Status:     "selected",
			Caller:     prog.Funcs[d.edge.caller].Name,
			Function:   prog.Funcs[d.edge.callee].Name,
			Cluster:    d.cluster,
			EdgeWeight: d.edge.weight,
		}
		if d.accepted {
			r.Page = pageOf[r.Function]
		} else {
			r.Status = "rejected"
			r.Reason = d.reason
		}
		recs = append(recs, r)
	}
	tr.EmitBatch("function-layout", recs)
	return order
}
