package benchkit

import (
	"fmt"

	"outliner/internal/appgen"
	"outliner/internal/exec"
	"outliner/internal/pipeline"
	"outliner/internal/profile"
)

// DefaultEntries returns the generated app's instrumentable entry points:
// every core-span use case plus main (which sweeps all spans) — the
// "typical usage scenarios" §VII profiles.
func DefaultEntries(spans int) []string {
	out := make([]string, 0, spans+1)
	for i := 1; i <= spans; i++ {
		out = append(out, fmt.Sprintf("span%d", i))
	}
	return append(out, "main")
}

// CollectProfile builds the UberRider corpus at scale under cfg, executes
// each named entry point once on the built program with instrumentation on,
// and returns the merged profile plus the build it came from. One machine is
// reused across entries (the realistic multi-scenario run the ISSUE's
// per-run stats fix exists for); per-entry exec stats land on cfg.Tracer as
// exec/* counters when it is set.
func CollectProfile(cfg pipeline.Config, scale float64, entries []string, maxSteps int64) (*profile.Profile, *pipeline.Result, error) {
	res, err := appgen.BuildApp(appgen.UberRider, scale, cfg)
	if err != nil {
		return nil, nil, err
	}
	p, err := ProfileEntries(res, entries, maxSteps, cfg)
	if err != nil {
		return nil, nil, err
	}
	return p, res, nil
}

// ProfileEntries runs the named entry points of a built program under an
// instrumented machine and returns the collected profile.
func ProfileEntries(res *pipeline.Result, entries []string, maxSteps int64, cfg pipeline.Config) (*profile.Profile, error) {
	col := profile.NewCollector()
	m, err := exec.New(res.Prog, exec.Options{MaxSteps: maxSteps, Profile: col})
	if err != nil {
		return nil, err
	}
	for _, entry := range entries {
		m.ResetStats()
		if _, err := m.Run(entry); err != nil {
			return nil, fmt.Errorf("profile run %q: %w", entry, err)
		}
		m.Stats().EmitCounters(cfg.Tracer)
	}
	return col.Profile(), nil
}
