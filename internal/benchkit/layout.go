package benchkit

import (
	"sync"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/perf"
	"outliner/internal/pipeline"
	"outliner/internal/profile"
)

// LayoutSuite holds one generated corpus plus a profile collected from it,
// and measures an uncached build per layout policy. The point of the suite is
// less the build time than the layout quality metrics each build reports —
// image bytes, touched pages, and the execution-weighted cross-page-call
// ratio at 4 KiB pages — which the -guard invariant (c3 cross-ratio ≤ none
// cross-ratio) watches. The corpus is generated once and the profile
// collected once (from a no-layout build; call-edge keys are
// layout-independent), both outside every timed region.
type LayoutSuite struct {
	cfg   pipeline.Config
	mods  []appgen.Module
	spans int

	profOnce sync.Once
	prof     *profile.Profile
	profErr  error
}

// NewLayoutSuite generates an UberRider corpus with at least `modules`
// modules for the layout comparison.
func NewLayoutSuite(cfg pipeline.Config, modules int) *LayoutSuite {
	scale := appgen.ScaleForModules(appgen.UberRider, modules)
	return &LayoutSuite{
		cfg:   cfg,
		mods:  appgen.Generate(appgen.UberRider, scale),
		spans: appgen.UberRider.Spans,
	}
}

// Modules returns the corpus's module count.
func (s *LayoutSuite) Modules() int { return len(s.mods) }

// profile builds the corpus once without layout and executes every span plus
// main under instrumentation, exactly the collect step of the README's
// collect→build-with-layout workflow.
func (s *LayoutSuite) profile() (*profile.Profile, error) {
	s.profOnce.Do(func() {
		res, err := appgen.BuildGenerated(s.mods, s.cfg)
		if err != nil {
			s.profErr = err
			return
		}
		s.prof, s.profErr = ProfileEntries(res, DefaultEntries(s.spans), 0, s.cfg)
	})
	return s.prof, s.profErr
}

// Build measures an uncached profiled build at the given layout policy and
// reports the layout quality metrics of the resulting image.
func (s *LayoutSuite) Build(policy string) func(*testing.B) {
	return func(b *testing.B) {
		prof, err := s.profile()
		if err != nil {
			b.Fatal(err)
		}
		c := s.cfg
		c.CacheDir = ""
		c.Layout = policy
		c.Profile = prof
		for i := 0; i < b.N; i++ {
			res, err := appgen.BuildGenerated(s.mods, c)
			if err != nil {
				b.Fatal(err)
			}
			pt := perf.PageTouch(res.Image, prof, perf.PageSizeDevices()[0])
			b.ReportMetric(float64(res.CodeSize()), "code-bytes")
			b.ReportMetric(float64(pt.TouchedPages), "touched-pages")
			b.ReportMetric(float64(pt.CrossPageCalls), "cross-page-calls")
			b.ReportMetric(float64(pt.TotalCalls), "total-calls")
			b.ReportMetric(100*pt.CrossRatio(), "cross-page-%")
		}
		b.ReportMetric(float64(len(s.mods)), "modules")
	}
}
