// Package benchkit holds the benchmark bodies shared between the repo's
// `go test -bench` suite (bench_test.go) and cmd/bench, the standalone
// runner that emits machine-readable results. Each function returns a
// closure suitable both for b.Run and for testing.Benchmark, so the two
// entry points measure exactly the same code.
package benchkit

import (
	"os"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/cache"
	"outliner/internal/obs"
	"outliner/internal/outline"
	"outliner/internal/pipeline"
)

// UncachedBuild measures the plain pipeline: no cache directory at all, the
// baseline both cache benches compare against.
func UncachedBuild(cfg pipeline.Config, scale float64) func(*testing.B) {
	return func(b *testing.B) {
		cfg.CacheDir = ""
		for i := 0; i < b.N; i++ {
			res, err := appgen.BuildApp(appgen.UberRider, scale, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.CodeSize()), "code-bytes")
		}
	}
}

// ColdBuild measures a first-ever cached build: every iteration gets a brand
// new cache directory, so the measured time includes every artifact encode
// and store (the cache's write-path overhead).
func ColdBuild(cfg pipeline.Config, scale float64) func(*testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "bench-cold-cache-")
			if err != nil {
				b.Fatal(err)
			}
			c := cfg
			c.CacheDir = dir
			b.StartTimer()
			res, err := appgen.BuildApp(appgen.UberRider, scale, c)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.CodeSize()), "code-bytes")
			os.RemoveAll(dir)
			cache.Forget(dir)
			b.StartTimer()
		}
	}
}

// WarmBuild measures a fully warm rebuild: one priming build populates a
// private cache, then every timed iteration rebuilds from it. The cache hit
// rate of the timed iterations is reported as a metric (it should be 100).
func WarmBuild(cfg pipeline.Config, scale float64) func(*testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "bench-warm-cache-")
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			os.RemoveAll(dir)
			cache.Forget(dir)
		}()
		tr := obs.New()
		c := cfg
		c.CacheDir = dir
		c.Tracer = tr
		if _, err := appgen.BuildApp(appgen.UberRider, scale, c); err != nil {
			b.Fatal(err)
		}
		primed := tr.Counters()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := appgen.BuildApp(appgen.UberRider, scale, c)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.CodeSize()), "code-bytes")
		}
		b.StopTimer()
		counters := tr.Counters()
		if probes := counters["cache/probes"] - primed["cache/probes"]; probes > 0 {
			hits := counters["cache/hits"] - primed["cache/hits"]
			b.ReportMetric(100*float64(hits)/float64(probes), "cache-hit-%")
		}
	}
}

// OutlineRounds measures repeated machine outlining in isolation over a
// prebuilt program clone per iteration — the bench that tracks the
// outliner's per-round allocation churn.
func OutlineRounds(scale float64, rounds int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := pipeline.OSize
		cfg.OutlineRounds = 0
		res, err := appgen.BuildApp(appgen.UberRider, scale, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prog := res.Prog.Clone()
			b.StartTimer()
			if _, err := outline.Outline(prog, outline.Options{Rounds: rounds}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(prog.CodeSize()), "code-bytes")
		}
	}
}
