// Package benchkit holds the benchmark bodies shared between the repo's
// `go test -bench` suite (bench_test.go) and cmd/bench, the standalone
// runner that emits machine-readable results. Each function returns a
// closure suitable both for b.Run and for testing.Benchmark, so the two
// entry points measure exactly the same code.
package benchkit

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/cache"
	"outliner/internal/obs"
	"outliner/internal/outline"
	"outliner/internal/pipeline"
)

// UncachedBuild measures the plain pipeline: no cache directory at all, the
// baseline both cache benches compare against.
func UncachedBuild(cfg pipeline.Config, scale float64) func(*testing.B) {
	return func(b *testing.B) {
		cfg.CacheDir = ""
		for i := 0; i < b.N; i++ {
			res, err := appgen.BuildApp(appgen.UberRider, scale, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.CodeSize()), "code-bytes")
		}
	}
}

// ColdBuild measures a first-ever cached build: every iteration gets a brand
// new cache directory, so the measured time includes every artifact encode
// and store (the cache's write-path overhead).
func ColdBuild(cfg pipeline.Config, scale float64) func(*testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "bench-cold-cache-")
			if err != nil {
				b.Fatal(err)
			}
			c := cfg
			c.CacheDir = dir
			b.StartTimer()
			res, err := appgen.BuildApp(appgen.UberRider, scale, c)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.CodeSize()), "code-bytes")
			os.RemoveAll(dir)
			cache.Forget(dir)
			b.StartTimer()
		}
	}
}

// WarmBuild measures a fully warm rebuild: one priming build populates a
// private cache, then every timed iteration rebuilds from it. The cache hit
// rate of the timed iterations is reported as a metric (it should be 100).
func WarmBuild(cfg pipeline.Config, scale float64) func(*testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "bench-warm-cache-")
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			os.RemoveAll(dir)
			cache.Forget(dir)
		}()
		tr := obs.New()
		c := cfg
		c.CacheDir = dir
		c.Tracer = tr
		if _, err := appgen.BuildApp(appgen.UberRider, scale, c); err != nil {
			b.Fatal(err)
		}
		primed := tr.Counters()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := appgen.BuildApp(appgen.UberRider, scale, c)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.CodeSize()), "code-bytes")
		}
		b.StopTimer()
		counters := tr.Counters()
		if probes := counters["cache/probes"] - primed["cache/probes"]; probes > 0 {
			hits := counters["cache/hits"] - primed["cache/hits"]
			b.ReportMetric(100*float64(hits)/float64(probes), "cache-hit-%")
		}
	}
}

// ScaleSuite holds one paper-scale corpus and measures the three build
// events that matter at that scale: a first-ever (cold) build, a no-change
// (warm) rebuild, and a rebuild after a single-module body edit. The corpus
// is generated once, outside every timed region; warm and edit share one
// primed cache directory so the suite pays for exactly two cold builds
// (cold's own iterations plus the shared priming build).
type ScaleSuite struct {
	cfg  pipeline.Config
	mods []appgen.Module

	prime    sync.Once
	dir      string
	primeErr error
}

// NewScaleSuite generates an UberRider corpus with at least `modules`
// modules (476 reproduces the paper's flagship app).
func NewScaleSuite(cfg pipeline.Config, modules int) *ScaleSuite {
	scale := appgen.ScaleForModules(appgen.UberRider, modules)
	return &ScaleSuite{cfg: cfg, mods: appgen.Generate(appgen.UberRider, scale)}
}

// Modules returns the corpus's module count.
func (s *ScaleSuite) Modules() int { return len(s.mods) }

// Lines returns the corpus's total source line count.
func (s *ScaleSuite) Lines() int { return appgen.LineCount(s.mods) }

// Close removes the shared primed cache directory.
func (s *ScaleSuite) Close() {
	if s.dir != "" {
		os.RemoveAll(s.dir)
		cache.Forget(s.dir)
	}
}

// primed builds the corpus once into a private cache directory and returns
// that directory; warm and edit benchmarks rebuild from it.
func (s *ScaleSuite) primed() (string, error) {
	s.prime.Do(func() {
		dir, err := os.MkdirTemp("", "bench-scale-cache-")
		if err != nil {
			s.primeErr = err
			return
		}
		s.dir = dir
		c := s.cfg
		c.CacheDir = dir
		if _, err := appgen.BuildGenerated(s.mods, c); err != nil {
			s.primeErr = err
		}
	})
	return s.dir, s.primeErr
}

// Cold measures a first-ever build of the corpus: a brand-new cache
// directory every iteration, artifact stores included.
func (s *ScaleSuite) Cold() func(*testing.B) {
	return func(b *testing.B) {
		b.ReportMetric(float64(len(s.mods)), "modules")
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "bench-scale-cold-")
			if err != nil {
				b.Fatal(err)
			}
			c := s.cfg
			c.CacheDir = dir
			b.StartTimer()
			res, err := appgen.BuildGenerated(s.mods, c)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.CodeSize()), "code-bytes")
			os.RemoveAll(dir)
			cache.Forget(dir)
			b.StartTimer()
		}
	}
}

// Warm measures a no-change rebuild from the shared primed cache and reports
// the llir warm-hit rate of the timed iterations (it should be 100).
func (s *ScaleSuite) Warm() func(*testing.B) {
	return func(b *testing.B) {
		dir, err := s.primed()
		if err != nil {
			b.Fatal(err)
		}
		tr := obs.New()
		c := s.cfg
		c.CacheDir = dir
		c.Tracer = tr
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := appgen.BuildGenerated(s.mods, c)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.CodeSize()), "code-bytes")
		}
		b.StopTimer()
		reportHitRate(b, tr.Counters())
		b.ReportMetric(float64(len(s.mods)), "modules")
	}
}

// Edit measures the paper-scale developer loop: one module's function body
// changes, everything else must come out of the cache. Each iteration uses a
// distinct edit (so it cannot hit entries stored by the previous iteration)
// and the metrics report the llir warm-hit rate, which interface-scoped keys
// keep at (modules-1)/modules.
func (s *ScaleSuite) Edit() func(*testing.B) {
	return func(b *testing.B) {
		dir, err := s.primed()
		if err != nil {
			b.Fatal(err)
		}
		target := s.mods[len(s.mods)/2].Name // an arbitrary mid-corpus module
		tr := obs.New()
		c := s.cfg
		c.CacheDir = dir
		c.Tracer = tr
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			edited := appgen.EditBody(s.mods, target, fmt.Sprintf("bench-%d", i))
			b.StartTimer()
			res, err := appgen.BuildGenerated(edited, c)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.CodeSize()), "code-bytes")
		}
		b.StopTimer()
		counters := tr.Counters()
		reportHitRate(b, counters)
		b.ReportMetric(float64(counters["cache/llir/misses"])/float64(b.N), "llir-misses/op")
		b.ReportMetric(float64(len(s.mods)), "modules")
	}
}

// reportHitRate reports the llir stage's warm-hit percentage and the total
// time spent computing cache keys across the timed iterations.
func reportHitRate(b *testing.B, counters map[string]int64) {
	if probes := counters["cache/llir/hits"] + counters["cache/llir/misses"]; probes > 0 {
		b.ReportMetric(100*float64(counters["cache/llir/hits"])/float64(probes), "llir-warm-hit-%")
	}
	b.ReportMetric(float64(counters["cache/key_hash_ns"])/float64(b.N), "key-hash-ns/op")
}

// OutlineRounds measures repeated machine outlining in isolation over a
// prebuilt program clone per iteration — the bench that tracks the
// outliner's per-round allocation churn.
func OutlineRounds(scale float64, rounds int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := pipeline.OSize
		cfg.OutlineRounds = 0
		res, err := appgen.BuildApp(appgen.UberRider, scale, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prog := res.Prog.Clone()
			b.StartTimer()
			if _, err := outline.Outline(prog, outline.Options{Rounds: rounds}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(prog.CodeSize()), "code-bytes")
		}
	}
}
