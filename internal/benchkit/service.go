package benchkit

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"outliner/internal/appgen"
	"outliner/internal/cache"
	"outliner/internal/slcd"
)

// serviceRemoteTimeout is the per-operation remote shard timeout the service
// suite runs under. It is deliberately small: the suite's dead shard hangs
// (never refuses), so every un-shed remote operation pays this timeout times
// the retry budget, which is exactly the failure mode the circuit breaker
// exists to bound.
const serviceRemoteTimeout = 25 * time.Millisecond

// ServiceSuite measures end-to-end build-request latency against a live
// daemon under remote-tier failure: a healthy shard, and a hung shard with
// the circuit breaker on vs. off. Every timed request edits one module body
// (a comment append — new llir key, identical image), so remote traffic flows
// on every request; without that, a warm local cache would hide the shard
// entirely. The headline numbers are the p50/p95 request latencies: with the
// breaker off, every request pays the hung shard's timeout-and-retry bill
// forever; with it on, only the requests before the breaker opens do.
type ServiceSuite struct {
	mods []appgen.Module
	app  []slcd.ModuleSource
	seq  atomic.Int64 // distinct edit tags across all iterations and reruns
}

// NewServiceSuite generates an UberRider corpus with at least `modules`
// modules. Keep the count modest (≈12): the breaker-off scenario deliberately
// pays the full timeout bill per remote operation.
func NewServiceSuite(modules int) *ServiceSuite {
	scale := appgen.ScaleForModules(appgen.UberRider, modules)
	mods := appgen.Generate(appgen.UberRider, scale)
	app := make([]slcd.ModuleSource, len(mods))
	for i, m := range mods {
		app[i] = slcd.ModuleSource{Name: m.Name, Files: m.Files}
	}
	return &ServiceSuite{mods: mods, app: app}
}

// Modules reports the generated corpus size.
func (s *ServiceSuite) Modules() int { return len(s.app) }

func (s *ServiceSuite) config() slcd.BuildConfig {
	cfg := slcd.DefaultConfig()
	cfg.OutlineRounds = 2
	return cfg
}

// request returns the next timed request: the base app with a fresh comment
// appended to one module, rotating through the corpus.
func (s *ServiceSuite) request() *slcd.BuildRequest {
	n := s.seq.Add(1)
	idx := int(n) % len(s.app)
	m := s.app[idx]
	files := make(map[string]string, len(m.Files))
	for name, text := range m.Files {
		files[name] = text + fmt.Sprintf("\n// bench edit %d\n", n)
	}
	modules := make([]slcd.ModuleSource, len(s.app))
	copy(modules, s.app)
	modules[idx] = slcd.ModuleSource{Name: m.Name, Files: files}
	return &slcd.BuildRequest{Modules: modules, Config: s.config()}
}

// healthyShard serves a real shard store over HTTP.
func healthyShard(b *testing.B) (*httptest.Server, func()) {
	dir, err := os.MkdirTemp("", "bench-shard-")
	if err != nil {
		b.Fatal(err)
	}
	store, err := cache.OpenShard(dir, 64<<20)
	if err != nil {
		os.RemoveAll(dir)
		b.Fatal(err)
	}
	hs := httptest.NewServer(cache.NewShardServer(store))
	return hs, func() {
		hs.Close()
		os.RemoveAll(dir)
	}
}

// hungShard is the worst remote failure mode: connections are accepted and
// then nothing happens until the client gives up. A refused connection fails
// fast; a hang costs the full per-operation timeout every time. The hang is
// bounded server-side at several client timeouts — indistinguishable from an
// infinite hang to the client (which gave up long before), but it lets the
// server drain its handlers at Close (a handler parked on an unread PUT body
// never observes the client's disconnect, so an unbounded hang would wedge
// Close forever).
func hungShard() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(4 * serviceRemoteTimeout):
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
}

// run is the shared bench body: stand up a daemon over the given shard,
// prime the local cache with one full build, then time per-request latency
// and report p50/p95 alongside ns/op.
func (s *ServiceSuite) run(b *testing.B, shardURL string, breakerThreshold int) {
	dir, err := os.MkdirTemp("", "bench-service-cache-")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		os.RemoveAll(dir)
		cache.Forget(dir)
	}()
	srv := slcd.NewServer(slcd.Options{
		CacheDir:         dir,
		ShardURLs:        []string{shardURL},
		Parallelism:      2,
		RemoteTimeout:    serviceRemoteTimeout,
		BreakerThreshold: breakerThreshold,
	})
	defer srv.Close()
	if resp := srv.Build(&slcd.BuildRequest{Modules: s.app, Config: s.config()}); !resp.OK {
		b.Fatalf("priming build failed (%s): %s", resp.ErrorClass, resp.Error)
	}

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		resp := srv.Build(s.request())
		elapsed := time.Since(start)
		if !resp.OK {
			b.Fatalf("request failed (%s): %s — a sick shard must degrade, not fail", resp.ErrorClass, resp.Error)
		}
		lat = append(lat, elapsed)
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2].Microseconds())/1000, "p50-ms")
	b.ReportMetric(float64(lat[len(lat)*95/100].Microseconds())/1000, "p95-ms")
}

// Healthy measures request latency with a live shard (breaker at its
// default threshold, which healthy traffic never reaches).
func (s *ServiceSuite) Healthy() func(*testing.B) {
	return func(b *testing.B) {
		shard, cleanup := healthyShard(b)
		defer cleanup()
		s.run(b, shard.URL, 0)
	}
}

// DeadShard measures request latency with a hung shard. breakerOn selects
// the default breaker threshold; off disables the breaker entirely, the
// pre-resilience behavior where every request pays the timeout bill.
func (s *ServiceSuite) DeadShard(breakerOn bool) func(*testing.B) {
	return func(b *testing.B) {
		shard := hungShard()
		defer shard.Close()
		threshold := 0
		if !breakerOn {
			threshold = -1
		}
		s.run(b, shard.URL, threshold)
	}
}
