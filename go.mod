module outliner

go 1.22
