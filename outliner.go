// Package outliner is the public API of the whole-program repeated
// machine-outlining toolchain — a from-scratch reproduction of "An
// Experience with Code-Size Optimization for Production iOS Mobile
// Applications" (CGO 2021).
//
// The package compiles SwiftLite source modules (a Swift-like language with
// reference counting, closures, generics, and throwing initializers) through
// a complete pipeline — SIL-analog IR, SSA mid-level IR, llvm-link-style
// module merging, an AArch64-like code generator — and applies the paper's
// optimization: machine-code outlining over the whole program, repeated
// until a fixed point. Compiled programs run on a built-in machine
// interpreter, so transformations are checked end to end.
//
// Quick start:
//
//	res, err := outliner.Build([]outliner.Module{{
//	    Name:  "App",
//	    Files: map[string]string{"app.sl": src},
//	}}, outliner.Production())
//	out, err := res.Run("main")
//
// The lower-level entry point OutlineText applies the outliner to a textual
// machine program directly, like the paper artifact's
// `llc -outline-repeat-count=N` on prebuilt bitcode.
package outliner

import (
	"fmt"

	"outliner/internal/exec"
	"outliner/internal/llir"
	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/outline"
	"outliner/internal/pipeline"
)

// Module is one compilation unit: a name and its SwiftLite source files.
type Module struct {
	Name  string
	Files map[string]string
}

// Options selects the build pipeline and optimization levels.
type Options struct {
	// WholeProgram merges all modules' IR before code generation (the
	// paper's new pipeline, Figure 10). When false, modules compile
	// independently and only the machine linker combines them (the default
	// iOS pipeline, Figure 2).
	WholeProgram bool
	// OutlineRounds is the repeated-machine-outlining count; 0 disables
	// machine outlining, 1 matches stock LLVM, the paper ships 5.
	OutlineRounds int
	// SILOutline, SpecializeClosures, MergeFunctions, and FMSA toggle the
	// mid-level passes of the paper's Table I.
	SILOutline         bool
	SpecializeClosures bool
	MergeFunctions     bool
	FMSA               bool
	// PreserveDataLayout keeps per-module global ordering across the IR
	// link (the §VI-3 fix); SplitGCMetadata enables linking of mixed
	// Swift/Objective-C modules (the §VI-2 fix).
	PreserveDataLayout bool
	SplitGCMetadata    bool
	// CanonicalizeSequences and LayoutOutlined enable the §VIII future-work
	// extensions: canonical commutative operand order before outlining, and
	// caller-adjacent placement of outlined functions after it.
	CanonicalizeSequences bool
	LayoutOutlined        bool
	// Tracer, when non-nil, collects build telemetry: stage spans (Chrome
	// trace JSON), counters, and outliner decision remarks. Telemetry is
	// strictly observational — the build output is byte-identical with or
	// without it.
	Tracer *Tracer
}

// Tracer collects spans, counters, and outliner decision remarks for one or
// more builds; see internal/obs. Create one with NewTracer, pass it in
// Options, then write out its three products:
//
//	tr := outliner.NewTracer(outliner.TracerConfig{MemStats: true})
//	opts := outliner.Production()
//	opts.Tracer = tr
//	res, err := outliner.Build(mods, opts)
//	tr.WriteTraceFile("build.trace.json")   // open in Perfetto
//	tr.WriteRemarksFile("remarks.jsonl")    // one record per candidate decision
//	tr.WriteSummary(os.Stderr)              // human-readable table
type Tracer = obs.Tracer

// TracerConfig tunes what a Tracer collects beyond spans, counters, and
// remarks (per-function codegen spans, per-stage allocation deltas).
type TracerConfig = obs.Config

// Remark is one outliner candidate decision from the remarks stream.
type Remark = obs.Remark

// NewTracer returns a telemetry collector with full collection tuned by cfg.
func NewTracer(cfg TracerConfig) *Tracer { return obs.NewWith(cfg) }

// Production returns the configuration the paper deployed: whole-program
// pipeline, five rounds of repeated outlining, all passes, both fixes.
func Production() Options {
	return Options{
		WholeProgram:       true,
		OutlineRounds:      5,
		SILOutline:         true,
		SpecializeClosures: true,
		MergeFunctions:     true,
		PreserveDataLayout: true,
		SplitGCMetadata:    true,
	}
}

// DefaultPipeline returns the stock iOS build behaviour: per-module
// compilation with one round of per-module outlining (Swift 5.2 -Osize).
func DefaultPipeline() Options {
	return Options{OutlineRounds: 1, SILOutline: true, SpecializeClosures: true}
}

func (o Options) toConfig() pipeline.Config {
	return pipeline.Config{
		WholeProgram:          o.WholeProgram,
		OutlineRounds:         o.OutlineRounds,
		SILOutline:            o.SILOutline,
		SpecializeClosures:    o.SpecializeClosures,
		MergeFunctions:        o.MergeFunctions,
		FMSA:                  o.FMSA,
		PreserveDataLayout:    o.PreserveDataLayout,
		SplitGCMetadata:       o.SplitGCMetadata,
		CanonicalizeSequences: o.CanonicalizeSequences,
		LayoutOutlined:        o.LayoutOutlined,
		Verify:                true,
		Tracer:                o.Tracer,
	}
}

// RoundStats reports one outlining round.
type RoundStats struct {
	Round             int
	SequencesOutlined int
	FunctionsCreated  int
	OutlinedBytes     int
}

// Result is a finished build.
type Result struct {
	// CodeSize is the machine-code section size in bytes; BinarySize is the
	// whole image including data, header, and symbol table.
	CodeSize   int
	BinarySize int
	// Rounds holds per-round outlining statistics (empty when outlining was
	// off).
	Rounds []RoundStats

	prog *mir.Program
}

// Build compiles modules under opts. Every module sees every other module's
// public declarations (like imported swiftmodule interfaces).
func Build(modules []Module, opts Options) (*Result, error) {
	sources := make([]pipeline.Source, len(modules))
	for i, m := range modules {
		sources[i] = pipeline.Source{Name: m.Name, Files: m.Files}
	}
	res, err := pipeline.Build(sources, opts.toConfig())
	if err != nil {
		return nil, err
	}
	out := &Result{
		CodeSize:   res.CodeSize(),
		BinarySize: res.BinarySize(),
		prog:       res.Prog,
	}
	if res.Outline != nil {
		for _, r := range res.Outline.Rounds {
			out.Rounds = append(out.Rounds, RoundStats{
				Round:             r.Round,
				SequencesOutlined: r.SequencesOutlined,
				FunctionsCreated:  r.FunctionsCreated,
				OutlinedBytes:     r.OutlinedBytes,
			})
		}
	}
	return out, nil
}

// Run executes a zero-argument function (usually "main") on the machine
// interpreter and returns everything it printed.
func (r *Result) Run(entry string) (string, error) {
	m, err := exec.New(r.prog, exec.Options{})
	if err != nil {
		return "", err
	}
	return m.Run(entry)
}

// MachineCode renders the final machine program in textual MIR form.
func (r *Result) MachineCode() string { return r.prog.String() }

// Pattern is one repeated machine-code sequence found by the analysis pass.
type Pattern struct {
	// Count is how many times the sequence occurs; Length is its
	// instruction count; SavedBytes the estimated benefit of outlining it.
	Count      int
	Length     int
	SavedBytes int
	// Listing renders the instructions like the paper's Listings 1-8.
	Listing string
}

// Patterns runs the statistics-collection pass (§IV) over the built program:
// every profitably-outlinable repeated sequence, most frequent first.
func (r *Result) Patterns() []Pattern {
	pats := outline.Analyze(r.prog, outline.Options{})
	out := make([]Pattern, len(pats))
	for i, p := range pats {
		out[i] = Pattern{
			Count:      p.Count,
			Length:     p.Length,
			SavedBytes: p.Benefit,
			Listing:    p.Listing(),
		}
	}
	return out
}

// OutlineText parses a textual machine program (the mir format), applies
// repeated machine outlining, and returns the transformed program with
// statistics. It is the library form of `cmd/outline`.
func OutlineText(mirText string, rounds int) (string, []RoundStats, error) {
	prog, err := mir.Parse(mirText)
	if err != nil {
		return "", nil, err
	}
	if err := prog.Verify(llir.RuntimeSyms); err != nil {
		return "", nil, fmt.Errorf("outliner: input: %w", err)
	}
	stats, err := outline.Outline(prog, outline.Options{
		Rounds:     rounds,
		Verify:     true,
		ExternSyms: llir.RuntimeSyms,
	})
	if err != nil {
		return "", nil, err
	}
	var rs []RoundStats
	for _, r := range stats.Rounds {
		rs = append(rs, RoundStats{
			Round:             r.Round,
			SequencesOutlined: r.SequencesOutlined,
			FunctionsCreated:  r.FunctionsCreated,
			OutlinedBytes:     r.OutlinedBytes,
		})
	}
	return prog.String(), rs, nil
}
