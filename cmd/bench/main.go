// Command bench runs the repository's cache and outliner benchmarks outside
// `go test` and emits machine-readable JSON, one record per benchmark with
// ns/op, allocation stats, and every custom metric. Two suites exist:
//
//	-suite pr4     the small-scale cache and outliner benches
//	               (BENCH_pr4.json is the committed baseline)
//	-suite scale   paper-scale incremental builds: cold / warm / one-module
//	               edit over a -modules corpus (BENCH_scale.json is the
//	               committed baseline, recorded at -modules 476)
//	-suite profile instrumented-run profile collection: build a -modules
//	               corpus, execute its span/main entry points, and write a
//	               mergeable execution profile to -profile-out (-entries
//	               picks a subset for sharded collection; -merge combines
//	               shards instead of collecting)
//	-suite layout  profile-guided layout comparison: collect a profile from
//	               a -modules corpus, then build it uncached at -layout
//	               none, hot-cold, and c3, reporting image bytes, touched
//	               pages, and the cross-page-call ratio (BENCH_layout.json
//	               is the committed baseline; -guard enforces c3's
//	               cross-ratio ≤ none's)
//	-suite service daemon request latency under remote-tier failure: p50/p95
//	               per-request latency against a healthy shard, and against
//	               a hung shard with the circuit breaker on vs. off
//	               (BENCH_service.json is the committed baseline; -guard
//	               enforces breaker-on beating breaker-off under the dead
//	               shard)
//
// Regenerate a baseline with:
//
//	go run ./cmd/bench -out BENCH_pr4.json
//	go run ./cmd/bench -suite scale -modules 476 -out BENCH_scale.json
//	go run ./cmd/bench -suite layout -modules 96 -out BENCH_layout.json
//	go run ./cmd/bench -suite service -modules 12 -out BENCH_service.json
//
// The bodies are shared with bench_test.go via internal/benchkit, so
// `go test -bench ColdVsWarm` and `go test -bench PaperScale` measure
// exactly the same code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/benchkit"
	"outliner/internal/layout"
	"outliner/internal/perf"
	"outliner/internal/pipeline"
	"outliner/internal/profile"
)

// Record is one benchmark result in the emitted JSON.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file cmd/bench writes.
type Report struct {
	Scale   float64  `json:"scale"`
	Modules int      `json:"modules,omitempty"`
	Results []Record `json:"results"`
}

func main() { os.Exit(run()) }

// run is main's body; returning (rather than os.Exit-ing) lets the profile
// and suite-cleanup defers fire on the failure path too.
func run() int {
	var (
		suite     = flag.String("suite", "pr4", "benchmark suite: pr4 (small-scale cache + outliner) | scale (paper-scale cold/warm/edit builds) | profile (instrumented-run collection) | layout (none/hot-cold/c3 comparison) | service (daemon latency under shard failure, breaker on/off)")
		scale     = flag.Float64("scale", 0.35, "pr4 suite: synthetic app scale (matches bench_test.go's benchScale)")
		modules   = flag.Int("modules", 476, "scale suite: corpus module count (476 = the paper's flagship app)")
		out       = flag.String("out", "", "output file (default stdout)")
		guard     = flag.String("guard", "", "baseline report to guard against (e.g. BENCH_pr4.json); exit 1 when a benchmark regresses past -tolerance")
		tolerance = flag.Float64("tolerance", 0.5, "allowed ns/op regression fraction over the -guard baseline (0.5 = +50%, generous for shared CI runners)")
		minWarm   = flag.Float64("min-warm-speedup", 0, "scale suite: fail unless the warm rebuild is at least this many times faster than the cold build (0 disables)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
		entries   = flag.String("entries", "", "profile suite: comma-separated entry points to execute (default: every span + main)")
		profOut   = flag.String("profile-out", "", "profile suite: write the collected (or merged) execution profile here")
		merge     = flag.String("merge", "", "profile suite: comma-separated profile shards to merge into -profile-out instead of collecting")
	)
	flag.Parse()

	if *suite == "profile" {
		return runProfileSuite(*modules, *entries, *profOut, *merge)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	type bench struct {
		name string
		body func(*testing.B)
	}
	var benches []bench
	var report Report
	switch *suite {
	case "pr4":
		benches = []bench{
			{"ColdVsWarmBuild/default/uncached", benchkit.UncachedBuild(pipeline.Default, *scale)},
			{"ColdVsWarmBuild/default/cold", benchkit.ColdBuild(pipeline.Default, *scale)},
			{"ColdVsWarmBuild/default/warm", benchkit.WarmBuild(pipeline.Default, *scale)},
			{"ColdVsWarmBuild/wholeprog/uncached", benchkit.UncachedBuild(pipeline.OSize, *scale)},
			{"ColdVsWarmBuild/wholeprog/cold", benchkit.ColdBuild(pipeline.OSize, *scale)},
			{"ColdVsWarmBuild/wholeprog/warm", benchkit.WarmBuild(pipeline.OSize, *scale)},
			{"OutlineRounds/1", benchkit.OutlineRounds(*scale, 1)},
			{"OutlineRounds/5", benchkit.OutlineRounds(*scale, 5)},
		}
		report = Report{Scale: *scale}
	case "scale":
		fmt.Fprintf(os.Stderr, "bench: generating %d-module corpus...\n", *modules)
		s := benchkit.NewScaleSuite(pipeline.Default, *modules)
		defer s.Close()
		fmt.Fprintf(os.Stderr, "bench: corpus: %d modules, %d lines\n", s.Modules(), s.Lines())
		benches = []bench{
			{"ScaleBuild/cold", s.Cold()},
			{"ScaleBuild/warm", s.Warm()},
			{"ScaleBuild/edit", s.Edit()},
		}
		report = Report{Modules: s.Modules()}
	case "layout":
		fmt.Fprintf(os.Stderr, "bench: generating %d-module corpus...\n", *modules)
		s := benchkit.NewLayoutSuite(pipeline.Default, *modules)
		benches = []bench{
			{"LayoutBuild/none", s.Build(layout.None)},
			{"LayoutBuild/hot-cold", s.Build(layout.HotCold)},
			{"LayoutBuild/c3", s.Build(layout.C3)},
		}
		report = Report{Modules: s.Modules()}
	case "service":
		// The dead-shard/breaker-off scenario pays the full remote timeout
		// bill per operation by design; keep the corpus small (-modules 12).
		fmt.Fprintf(os.Stderr, "bench: generating %d-module corpus...\n", *modules)
		s := benchkit.NewServiceSuite(*modules)
		benches = []bench{
			{"ServiceBuild/healthy", s.Healthy()},
			{"ServiceBuild/dead-shard/breaker-on", s.DeadShard(true)},
			{"ServiceBuild/dead-shard/breaker-off", s.DeadShard(false)},
		}
		report = Report{Modules: s.Modules()}
	default:
		fatal(fmt.Errorf("unknown -suite %q (want pr4, scale, profile, layout, or service)", *suite))
	}
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", bm.name)
		r := testing.Benchmark(bm.body)
		rec := Record{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			rec.Metrics = r.Extra
		}
		report.Results = append(report.Results, rec)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	code := 0
	if *guard != "" && !guardReport(report, *guard, *tolerance) {
		code = 1
	}
	if *minWarm > 0 && !checkWarmSpeedup(report, *minWarm) {
		code = 1
	}
	return code
}

// runProfileSuite implements -suite profile, the instrumented-run collection
// mode: build the -modules corpus, execute its entry points under
// instrumentation, and write the canonical profile to -profile-out. With
// -merge, it instead merges already-collected shards (the distributed
// collection path: shards from different machines or entry-point subsets
// combine bit-identically in any order).
func runProfileSuite(modules int, entries, out, merge string) int {
	if out == "" {
		fmt.Fprintln(os.Stderr, "bench: -suite profile needs -profile-out")
		return 2
	}
	if merge != "" {
		shards := strings.Split(merge, ",")
		p, err := profile.ReadFiles(shards...)
		if err != nil {
			fatal(err)
		}
		if err := p.WriteFile(out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bench: merged %d shards -> %s (digest %s)\n",
			len(shards), out, p.Digest())
		return 0
	}
	scale := appgen.ScaleForModules(appgen.UberRider, modules)
	names := benchkit.DefaultEntries(appgen.UberRider.Spans)
	if entries != "" {
		names = strings.Split(entries, ",")
	}
	fmt.Fprintf(os.Stderr, "bench: building %d-module corpus and profiling %d entry points...\n",
		modules, len(names))
	p, res, err := benchkit.CollectProfile(pipeline.Default, scale, names, 0)
	if err != nil {
		fatal(err)
	}
	if err := p.WriteFile(out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (digest %s)\n", out, p.Digest())
	profile.WriteHotReport(os.Stderr, p, 10, 0)
	for _, pt := range perf.PageTouchSizes(res.Image, p) {
		fmt.Fprint(os.Stderr, perf.FormatPageTouch(pt))
	}
	return 0
}

// checkWarmSpeedup enforces the scale suite's headline acceptance number:
// a fully warm rebuild must beat the cold build by the given factor.
func checkWarmSpeedup(report Report, min float64) bool {
	var cold, warm *Record
	for i, r := range report.Results {
		switch r.Name {
		case "ScaleBuild/cold":
			cold = &report.Results[i]
		case "ScaleBuild/warm":
			warm = &report.Results[i]
		}
	}
	if cold == nil || warm == nil {
		fmt.Fprintln(os.Stderr, "bench: -min-warm-speedup needs the scale suite's cold and warm results")
		return false
	}
	speedup := cold.NsPerOp / warm.NsPerOp
	if speedup < min {
		fmt.Fprintf(os.Stderr, "bench: REGRESSION warm rebuild only %.1fx faster than cold (want >= %.1fx)\n", speedup, min)
		return false
	}
	fmt.Fprintf(os.Stderr, "bench: warm rebuild %.1fx faster than cold (>= %.1fx required)\n", speedup, min)
	return true
}

// guardReport compares the fresh report against a committed baseline:
// every benchmark present in both must stay within tolerance of the
// baseline's ns/op, and the structural invariants must still hold — in the
// pr4 suite the warm cached build beats the uncached build, in the scale
// suite (BENCH_scale.json) the warm rebuild beats the cold build (a
// fault-tolerance regression that turned every warm probe into a degraded
// miss would fail here even if absolute times drifted), and in the layout
// suite (BENCH_layout.json) the c3 cross-page-call ratio stays at or below
// none's. Missing or extra benchmarks are reported but not fatal, so the
// guard survives benchmark additions. Every violated invariant is reported
// before the guard fails — a scale mismatch disables the time comparisons
// but the structural checks still run — so one run surfaces every
// regression. Failures return false rather than exiting, so run()'s profile
// and cleanup defers fire on the failure path.
func guardReport(report Report, path string, tolerance float64) bool {
	var violations []string
	violate := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return false
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %s: %v\n", path, err)
		return false
	}
	timesComparable := true
	if base.Scale != report.Scale {
		violate("baseline %s was recorded at -scale %g, this run used %g; times are not comparable",
			path, base.Scale, report.Scale)
		timesComparable = false
	}
	if base.Modules != report.Modules {
		violate("baseline %s was recorded at -modules %d, this run used %d; times are not comparable",
			path, base.Modules, report.Modules)
		timesComparable = false
	}
	baseline := make(map[string]Record, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	current := make(map[string]Record, len(report.Results))
	for _, r := range report.Results {
		current[r.Name] = r
		b, found := baseline[r.Name]
		if !found {
			fmt.Fprintf(os.Stderr, "guard: %s: not in baseline, skipped\n", r.Name)
			continue
		}
		if timesComparable && r.NsPerOp > b.NsPerOp*(1+tolerance) {
			violate("REGRESSION %s: %.0f ns/op vs baseline %.0f (+%.0f%%, tolerance %.0f%%)",
				r.Name, r.NsPerOp, b.NsPerOp, 100*(r.NsPerOp/b.NsPerOp-1), 100*tolerance)
		}
	}
	// Structural invariants compare results within this run, so they hold
	// regardless of baseline scale.
	for _, pipe := range []string{"default", "wholeprog"} {
		warm, w := current["ColdVsWarmBuild/"+pipe+"/warm"]
		uncached, u := current["ColdVsWarmBuild/"+pipe+"/uncached"]
		if w && u && warm.NsPerOp >= uncached.NsPerOp {
			violate("REGRESSION %s: warm build (%.0f ns/op) no faster than uncached (%.0f ns/op)",
				pipe, warm.NsPerOp, uncached.NsPerOp)
		}
	}
	// The scale suite's analog: a fully warm rebuild of the paper-scale
	// corpus must beat the cold build outright.
	if warm, w := current["ScaleBuild/warm"]; w {
		if cold, c := current["ScaleBuild/cold"]; c && warm.NsPerOp >= cold.NsPerOp {
			violate("REGRESSION ScaleBuild: warm rebuild (%.0f ns/op) no faster than cold (%.0f ns/op)",
				warm.NsPerOp, cold.NsPerOp)
		}
	}
	// The service suite's resilience invariant: against a hung shard, the
	// circuit breaker must make requests cheaper than paying the remote
	// timeout bill on every request. A breaker regression (never opens, or
	// sheds nothing) fails here regardless of absolute times.
	if on, hasOn := current["ServiceBuild/dead-shard/breaker-on"]; hasOn {
		if off, hasOff := current["ServiceBuild/dead-shard/breaker-off"]; hasOff && on.NsPerOp >= off.NsPerOp {
			violate("REGRESSION ServiceBuild: breaker-on dead-shard latency (%.0f ns/op) not below breaker-off (%.0f ns/op)",
				on.NsPerOp, off.NsPerOp)
		}
	}
	// The layout suite's quality invariant: call-chain clustering must not
	// produce a worse execution-weighted cross-page-call ratio than the
	// original order (ns/op tolerance never excuses a layout quality loss).
	if c3, hasC3 := current["LayoutBuild/c3"]; hasC3 {
		if none, hasNone := current["LayoutBuild/none"]; hasNone {
			c3Ratio, noneRatio := c3.Metrics["cross-page-%"], none.Metrics["cross-page-%"]
			if c3Ratio > noneRatio {
				violate("REGRESSION LayoutBuild: c3 cross-page ratio %.2f%% above none's %.2f%%",
					c3Ratio, noneRatio)
			}
		}
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "guard:", v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "guard: %d invariant(s) violated against %s\n", len(violations), path)
		return false
	}
	fmt.Fprintf(os.Stderr, "guard: all benchmarks within %.0f%% of %s\n", 100*tolerance, path)
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
