// Command bench runs the repository's cache and outliner benchmarks outside
// `go test` and emits machine-readable JSON, one record per benchmark with
// ns/op, allocation stats, and every custom metric. BENCH_pr4.json at the
// repo root is a committed baseline produced by this command; regenerate it
// with:
//
//	go run ./cmd/bench -out BENCH_pr4.json
//
// The bodies are shared with bench_test.go via internal/benchkit, so
// `go test -bench ColdVsWarm` measures exactly the same code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"outliner/internal/benchkit"
	"outliner/internal/pipeline"
)

// Record is one benchmark result in the emitted JSON.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file cmd/bench writes.
type Report struct {
	Scale   float64  `json:"scale"`
	Results []Record `json:"results"`
}

func main() {
	var (
		scale = flag.Float64("scale", 0.35, "synthetic app scale (matches bench_test.go's benchScale)")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	benches := []struct {
		name string
		body func(*testing.B)
	}{
		{"ColdVsWarmBuild/default/uncached", benchkit.UncachedBuild(pipeline.Default, *scale)},
		{"ColdVsWarmBuild/default/cold", benchkit.ColdBuild(pipeline.Default, *scale)},
		{"ColdVsWarmBuild/default/warm", benchkit.WarmBuild(pipeline.Default, *scale)},
		{"ColdVsWarmBuild/wholeprog/uncached", benchkit.UncachedBuild(pipeline.OSize, *scale)},
		{"ColdVsWarmBuild/wholeprog/cold", benchkit.ColdBuild(pipeline.OSize, *scale)},
		{"ColdVsWarmBuild/wholeprog/warm", benchkit.WarmBuild(pipeline.OSize, *scale)},
		{"OutlineRounds/1", benchkit.OutlineRounds(*scale, 1)},
		{"OutlineRounds/5", benchkit.OutlineRounds(*scale, 5)},
	}

	report := Report{Scale: *scale}
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", bm.name)
		r := testing.Benchmark(bm.body)
		rec := Record{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			rec.Metrics = r.Extra
		}
		report.Results = append(report.Results, rec)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
