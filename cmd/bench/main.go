// Command bench runs the repository's cache and outliner benchmarks outside
// `go test` and emits machine-readable JSON, one record per benchmark with
// ns/op, allocation stats, and every custom metric. BENCH_pr4.json at the
// repo root is a committed baseline produced by this command; regenerate it
// with:
//
//	go run ./cmd/bench -out BENCH_pr4.json
//
// The bodies are shared with bench_test.go via internal/benchkit, so
// `go test -bench ColdVsWarm` measures exactly the same code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"outliner/internal/benchkit"
	"outliner/internal/pipeline"
)

// Record is one benchmark result in the emitted JSON.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file cmd/bench writes.
type Report struct {
	Scale   float64  `json:"scale"`
	Results []Record `json:"results"`
}

func main() {
	var (
		scale     = flag.Float64("scale", 0.35, "synthetic app scale (matches bench_test.go's benchScale)")
		out       = flag.String("out", "", "output file (default stdout)")
		guard     = flag.String("guard", "", "baseline report to guard against (e.g. BENCH_pr4.json); exit 1 when a benchmark regresses past -tolerance")
		tolerance = flag.Float64("tolerance", 0.5, "allowed ns/op regression fraction over the -guard baseline (0.5 = +50%, generous for shared CI runners)")
	)
	flag.Parse()

	benches := []struct {
		name string
		body func(*testing.B)
	}{
		{"ColdVsWarmBuild/default/uncached", benchkit.UncachedBuild(pipeline.Default, *scale)},
		{"ColdVsWarmBuild/default/cold", benchkit.ColdBuild(pipeline.Default, *scale)},
		{"ColdVsWarmBuild/default/warm", benchkit.WarmBuild(pipeline.Default, *scale)},
		{"ColdVsWarmBuild/wholeprog/uncached", benchkit.UncachedBuild(pipeline.OSize, *scale)},
		{"ColdVsWarmBuild/wholeprog/cold", benchkit.ColdBuild(pipeline.OSize, *scale)},
		{"ColdVsWarmBuild/wholeprog/warm", benchkit.WarmBuild(pipeline.OSize, *scale)},
		{"OutlineRounds/1", benchkit.OutlineRounds(*scale, 1)},
		{"OutlineRounds/5", benchkit.OutlineRounds(*scale, 5)},
	}

	report := Report{Scale: *scale}
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", bm.name)
		r := testing.Benchmark(bm.body)
		rec := Record{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			rec.Metrics = r.Extra
		}
		report.Results = append(report.Results, rec)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	if *guard != "" && !guardReport(report, *guard, *tolerance) {
		os.Exit(1)
	}
}

// guardReport compares the fresh report against a committed baseline:
// every benchmark present in both must stay within tolerance of the
// baseline's ns/op, and the warm cached build must still beat the uncached
// build (the cache's reason to exist — a fault-tolerance regression that
// turned every warm probe into a degraded miss would fail here even if
// absolute times drifted). Missing or extra benchmarks are reported but not
// fatal, so the guard survives benchmark additions.
func guardReport(report Report, path string, tolerance float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if base.Scale != report.Scale {
		fatal(fmt.Errorf("guard: baseline %s was recorded at -scale %g, this run used %g; times are not comparable",
			path, base.Scale, report.Scale))
	}
	baseline := make(map[string]Record, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	ok := true
	current := make(map[string]Record, len(report.Results))
	for _, r := range report.Results {
		current[r.Name] = r
		b, found := baseline[r.Name]
		if !found {
			fmt.Fprintf(os.Stderr, "guard: %s: not in baseline, skipped\n", r.Name)
			continue
		}
		if r.NsPerOp > b.NsPerOp*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "guard: REGRESSION %s: %.0f ns/op vs baseline %.0f (+%.0f%%, tolerance %.0f%%)\n",
				r.Name, r.NsPerOp, b.NsPerOp, 100*(r.NsPerOp/b.NsPerOp-1), 100*tolerance)
			ok = false
		}
	}
	for _, pipe := range []string{"default", "wholeprog"} {
		warm, w := current["ColdVsWarmBuild/"+pipe+"/warm"]
		uncached, u := current["ColdVsWarmBuild/"+pipe+"/uncached"]
		if w && u && warm.NsPerOp >= uncached.NsPerOp {
			fmt.Fprintf(os.Stderr, "guard: REGRESSION %s: warm build (%.0f ns/op) no faster than uncached (%.0f ns/op)\n",
				pipe, warm.NsPerOp, uncached.NsPerOp)
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(os.Stderr, "guard: all benchmarks within %.0f%% of %s\n", 100*tolerance, path)
	}
	return ok
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
