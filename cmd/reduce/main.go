// Command reduce is the differential-testing driver: it generates a
// synthetic app, builds it at two points of the pipeline-configuration
// lattice, and — when the builds disagree — delta-debugs the program down
// to a minimal SwiftLite reproduction.
//
// Usage:
//
//	reduce [flags]
//
// Examples:
//
//	reduce -seed 1037 -scale 0.1                 # check baseline vs osize
//	reduce -point wp-flatcost -o repro/          # minimize into repro/*.sl
//	reduce -bits 0x2b                            # fuzz-style config corner
//	reduce -inject-miscompile                    # demo: corrupt an outlined
//	                                             # sequence, then minimize
//
// Exit status: 0 when the points agree (nothing to reduce), 1 when a
// divergence was found (the reproduction is written out), 2 on usage or
// build errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"outliner/internal/appgen"
	"outliner/internal/difftest"
	"outliner/internal/mir"
)

func main() {
	var (
		profileName = flag.String("profile", "uber-rider", "app profile: uber-rider | uber-driver | uber-eats")
		seed        = flag.Int64("seed", 1037, "app-generator seed")
		scale       = flag.Float64("scale", 0.1, "app scale (1.0 = the paper's base app)")
		spans       = flag.Int("spans", 2, "core-span entry points in the generated app")
		refName     = flag.String("ref", "baseline", "reference lattice point")
		ptName      = flag.String("point", "osize", "lattice point to compare against the reference")
		bits        = flag.Uint64("bits", 0, "instead of -point, derive the comparison config from these bits")
		maxSteps    = flag.Int64("max-steps", 100_000_000, "interpreter step budget per execution")
		attempts    = flag.Int("attempts", 2000, "reduction candidate budget")
		outDir      = flag.String("o", "", "write the minimized modules as <dir>/<Module>.sl (default: stdout)")
		inject      = flag.Bool("inject-miscompile", false, "corrupt one outlined sequence before executing (self-test/demo)")
		quiet       = flag.Bool("q", false, "suppress reduction progress on stderr")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: reduce [flags]")
		flag.Usage()
		os.Exit(2)
	}

	profile, ok := profiles()[*profileName]
	if !ok {
		fatal(fmt.Errorf("unknown profile %q", *profileName))
	}
	profile.Seed = *seed
	profile.Spans = *spans
	mods := appgen.Generate(profile, *scale)

	ref, ok := difftest.PointNamed(*refName)
	if !ok {
		fatal(fmt.Errorf("unknown lattice point %q", *refName))
	}
	var pt difftest.Point
	if flagSet("bits") {
		pt = difftest.PointFromBits(*bits)
	} else if pt, ok = difftest.PointNamed(*ptName); !ok {
		fatal(fmt.Errorf("unknown lattice point %q", *ptName))
	}
	pts := []difftest.Point{ref, pt}

	o := &difftest.Oracle{MaxSteps: *maxSteps}
	if *inject {
		// Pick an outlined constant whose corruption is observable.
		prog, err := o.Build(mods, pt)
		if err != nil {
			fatal(err)
		}
		found := false
		for _, imm := range difftest.OutlinedMOVZImms(prog) {
			imm := imm
			o.Corrupt = func(p *mir.Program) { difftest.CorruptOutlinedImm(p, imm) }
			if div, err := o.Check(mods, pts); err == nil && div != nil {
				fmt.Fprintf(os.Stderr, "reduce: injected corruption of outlined MOVZ #%d\n", imm)
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("no observable outlined corruption at %s", pt.Name))
		}
	}

	div, err := o.Check(mods, pts)
	if err != nil {
		fatal(err)
	}
	if div == nil {
		fmt.Printf("points %s and %s agree on %d modules (%d bytes); nothing to reduce\n",
			ref.Name, pt.Name, len(mods), difftest.Size(mods))
		return
	}
	fmt.Fprintf(os.Stderr, "reduce: %v\n", div)

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "reduce: "+format+"\n", args...)
		}
	}
	interesting := func(m []appgen.Module) bool {
		d, err := o.Check(m, pts)
		return err == nil && d != nil
	}
	red := difftest.Reduce(mods, interesting, difftest.ReduceOptions{
		MaxAttempts: *attempts,
		Log:         logf,
	})
	fmt.Fprintf(os.Stderr, "reduce: minimized %d -> %d bytes across %d module(s)\n",
		difftest.Size(mods), difftest.Size(red), len(red))

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		for _, m := range red {
			var text string
			for _, fname := range sortedKeys(m.Files) {
				text += m.Files[fname]
			}
			path := filepath.Join(*outDir, m.Name+".sl")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "reduce: wrote %s\n", path)
		}
	} else {
		for _, m := range red {
			fmt.Printf("// module %s\n", m.Name)
			for _, fname := range sortedKeys(m.Files) {
				fmt.Println(m.Files[fname])
			}
		}
	}
	os.Exit(1)
}

func profiles() map[string]appgen.Profile {
	return map[string]appgen.Profile{
		"uber-rider":  appgen.UberRider,
		"uber-driver": appgen.UberDriver,
		"uber-eats":   appgen.UberEats,
	}
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reduce:", err)
	os.Exit(2)
}
