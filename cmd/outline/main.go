// Command outline runs (repeated) machine outlining over a textual machine
// program — the analog of the paper artifact's `llc
// -outline-repeat-count=N` step applied to prebuilt bitcode.
//
// Usage:
//
//	outline -outline-repeat-count=5 program.mir
//	outline -analyze program.mir
//
// Input is the textual MIR format (see internal/mir); output is the
// transformed program on stdout and a size report on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"outliner/internal/artifact"
	"outliner/internal/cache"
	"outliner/internal/fault"
	"outliner/internal/layout"
	"outliner/internal/llir"
	"outliner/internal/mir"
	"outliner/internal/obs"
	"outliner/internal/outline"
	"outliner/internal/profile"
	verifypkg "outliner/internal/verify"
)

func main() {
	var (
		rounds  = flag.Int("outline-repeat-count", 5, "rounds of repeated machine outlining")
		analyze = flag.Bool("analyze", false, "print the repeating-pattern report instead of transforming")
		flat    = flag.Bool("flat-cost", false, "ablation: flat outlining cost model")
		quiet   = flag.Bool("q", false, "suppress the transformed program (stats only)")
		jobs    = flag.Int("j", 0, "candidate-analysis workers (0 = one per CPU, 1 = serial); output is identical for any value")
		trace   = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto or chrome://tracing)")
		remarks = flag.String("remarks", "", "write candidate decision remarks as JSONL")
		summary = flag.Bool("summary", false, "print per-round counters and stage times to stderr")
		verify  = flag.Bool("verify", true, "verify the input and every outlining round with the machine-code verifier")
		cchDir  = flag.String("cache-dir", "", "content-addressed cache directory for outlining results (empty = cache off)")
		onvf    = flag.String("on-verify-failure", "abort", "verifier-failure policy: abort | rollback-round | disable-outlining")
		fSeed   = flag.Uint64("fault-seed", 0, "deterministic fault-injection schedule seed (used with -fault-rate)")
		fRate   = flag.Float64("fault-rate", 0, "fault-injection probability per outlining round (0 disables)")
		layoutP = flag.String("layout", "", "profile-guided function layout policy applied after outlining: none | hot-cold | c3 (needs -profile-in)")
		profIn  = flag.String("profile-in", "", "execution profile feeding remark verdicts and the -layout pass")
	)
	flag.Parse()
	switch *onvf {
	case outline.VerifyAbort, outline.VerifyRollbackRound, outline.VerifyDisableOutlining:
	default:
		fatal(fmt.Errorf("unknown -on-verify-failure mode %q", *onvf))
	}
	if !layout.Valid(*layoutP) {
		fatal(fmt.Errorf("unknown -layout policy %q", *layoutP))
	}
	var prof *profile.Profile
	if *profIn != "" {
		p, perr := profile.ReadFile(*profIn)
		if perr != nil {
			fatal(perr)
		}
		prof = p
	}
	var inj *fault.Injector
	if *fRate > 0 {
		inj = fault.New(*fSeed, *fRate)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: outline [flags] program.mir")
		flag.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := mir.Parse(string(text))
	if err != nil {
		fatal(err)
	}
	if *verify {
		if err := prog.Verify(llir.RuntimeSyms); err != nil {
			fatal(fmt.Errorf("input: %w", err))
		}
		if err := verifypkg.Program(prog, llir.RuntimeSyms).Err(); err != nil {
			fatal(fmt.Errorf("input: %w", err))
		}
	}

	if *analyze {
		pats := outline.Analyze(prog, outline.Options{})
		fmt.Fprintf(os.Stderr, "%d profitable repeating patterns\n", len(pats))
		for _, p := range pats {
			fmt.Println(p.Listing())
		}
		return
	}

	var tracer *obs.Tracer
	if *trace != "" || *remarks != "" || *summary {
		tracer = obs.NewWith(obs.Config{MemStats: true})
	}
	before := prog.CodeSize()

	// The outlined program is a pure function of the input text and the
	// flags above, so the whole transformation caches under one key. A
	// corrupted entry decodes to an error and falls through to outlining.
	var (
		c   *cache.Cache
		key cache.Key
	)
	if *cchDir != "" {
		c, err = cache.Shared(*cchDir)
		if err != nil {
			fatal(err)
		}
		fp := fmt.Sprintf("rounds=%d flat=%t verify=%t onvf=%s", *rounds, *flat, *verify, *onvf)
		if inj != nil {
			// A faulted run may cache a degraded (rolled-back) program; keep
			// it out of the clean key space.
			fp += " fault=" + inj.String()
		}
		if *layoutP != "" && *layoutP != layout.None {
			// The cached program's function order depends on the policy and
			// the profile content, so both join the key.
			fp += fmt.Sprintf(" layout=%s prof=%s", *layoutP, prof.Digest())
		}
		key = cache.Key{
			Stage:  "outline-cli",
			Input:  cache.HashBytes(text),
			Config: fp,
			Schema: artifact.SchemaVersion,
		}
		if data, ok := c.Get(key); ok {
			if cached, stats, err := artifact.DecodeMachine(data); err == nil {
				report(cached, stats, before, *quiet)
				return
			}
		}
	}
	stats, err := outline.Outline(prog, outline.Options{
		Rounds:          *rounds,
		FlatCostModel:   *flat,
		Verify:          *verify,
		ExternSyms:      llir.RuntimeSyms,
		Parallelism:     *jobs,
		Tracer:          tracer,
		OnVerifyFailure: *onvf,
		Fault:           inj,
		Profile:         prof,
		Layout:          *layoutP,
	})
	if err != nil {
		fatal(err)
	}
	if *trace != "" {
		if err := tracer.WriteTraceFile(*trace); err != nil {
			fatal(err)
		}
	}
	if *remarks != "" {
		if err := tracer.WriteRemarksFile(*remarks); err != nil {
			fatal(err)
		}
	}
	if *summary {
		if err := tracer.WriteSummary(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if c != nil {
		c.Put(key, artifact.EncodeMachine(prog, stats))
	}
	report(prog, stats, before, *quiet)
}

// report prints the transformed program and the per-round size summary,
// identically for fresh and cache-hit results.
func report(prog *mir.Program, stats *outline.Stats, before int, quiet bool) {
	if !quiet {
		fmt.Print(prog.String())
	}
	after := prog.CodeSize()
	fmt.Fprintf(os.Stderr, "code size: %d -> %d bytes (%.1f%% saving)\n",
		before, after, 100*(1-float64(after)/float64(before)))
	if stats != nil {
		for _, r := range stats.Rounds {
			fmt.Fprintf(os.Stderr, "  round %d: %d sequences, %d functions, %d outlined bytes\n",
				r.Round, r.SequencesOutlined, r.FunctionsCreated, r.OutlinedBytes)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "outline:", err)
	os.Exit(1)
}
