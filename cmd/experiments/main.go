// Command experiments regenerates the paper's tables and figures on the
// reproduction's substrate.
//
// Usage:
//
//	experiments [flags] <experiment> [more experiments | all]
//
// Experiments:
//
//	fig1        code-size growth over time, both pipelines, fitted slopes
//	table1      savings landscape by abstraction level
//	patterns    Figures 5-8 + Listings: machine-code replication analysis
//	fig12       size vs outlining rounds, inter- vs intra-module; Table II
//	fig13       span performance heatmaps over the device/OS grid; Table III
//	table4      the 26-benchmark performance suite (+ pathological case)
//	buildtime   wall-clock build time by configuration (§VII-C)
//	generality  UberDriver/UberEats/clang-like/kernel-like (§VII-E)
//	datalayout  the llvm-link data-ordering regression (§VI-3)
//	all         everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"outliner/internal/experiments"
	"outliner/internal/obs"
)

func main() {
	var (
		scale   = flag.Float64("scale", experiments.DefaultScale, "app scale (1.0 = full synthetic app)")
		samples = flag.Int("samples", 3, "device-population samples per fig13 cell")
		jobs    = flag.Int("j", 0, "parallel build workers (0 = one per CPU, 1 = serial); results are identical for any value")
		trace   = flag.String("trace", "", "write a Chrome trace-event JSON file covering every build the experiments run")
		remarks = flag.String("remarks", "", "write outliner decision remarks as JSONL")
		summary = flag.Bool("summary", false, "print a cumulative telemetry summary to stderr after all experiments")
		cchDir  = flag.String("cache-dir", "", "incremental build cache directory shared by every build the experiments run (results are identical cold or warm)")
	)
	flag.Parse()
	experiments.Parallelism = *jobs
	experiments.CacheDir = *cchDir
	var tracer *obs.Tracer
	if *trace != "" || *remarks != "" || *summary {
		tracer = obs.NewWith(obs.Config{MemStats: true})
		experiments.Tracer = tracer
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	runners := map[string]func() error{
		"fig1": func() error {
			_, err := experiments.RunFig1(os.Stdout, 8, *scale+0.4)
			return err
		},
		"table1": func() error {
			_, err := experiments.RunTable1(os.Stdout, *scale)
			return err
		},
		"patterns": func() error {
			_, err := experiments.RunPatterns(os.Stdout, *scale)
			return err
		},
		"fig12": func() error {
			_, err := experiments.RunFig12(os.Stdout, *scale, 6)
			return err
		},
		"fig13": func() error {
			_, err := experiments.RunFig13(os.Stdout, *scale, *samples)
			return err
		},
		"table4": func() error {
			if _, err := experiments.RunTable4(os.Stdout); err != nil {
				return err
			}
			_, err := experiments.RunPathological(os.Stdout)
			return err
		},
		"buildtime": func() error {
			_, err := experiments.RunBuildTime(os.Stdout, *scale)
			return err
		},
		"generality": func() error {
			_, err := experiments.RunGenerality(os.Stdout, *scale)
			return err
		},
		"datalayout": func() error {
			_, err := experiments.RunDataLayout(os.Stdout, *scale)
			return err
		},
	}
	order := []string{"fig1", "table1", "patterns", "fig12", "fig13",
		"table4", "buildtime", "generality", "datalayout"}

	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	for i, name := range args {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if i > 0 {
			fmt.Print("\n================================================================\n\n")
		}
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *trace != "" {
		if err := tracer.WriteTraceFile(*trace); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if *remarks != "" {
		if err := tracer.WriteRemarksFile(*remarks); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if *summary {
		if err := tracer.WriteSummary(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
}
