// Command slcd is the build-farm side of the toolchain: one binary serving
// three roles, selected by -mode.
//
//	slcd -mode serve  (default): the compile daemon. Accepts concurrent build
//	    requests over HTTP (POST /build), dedupes identical in-flight stage
//	    work across requests through the single-flight layer, and shares one
//	    build cache — optionally backed by a sharded remote tier — across
//	    every request it serves.
//	slcd -mode shard: one remote cache shard — an LRU-capped, disk-backed
//	    entry store speaking the cache's HTTP protocol (GET/PUT/DELETE
//	    /entry/<id>, GET /statz).
//	slcd -mode client: a build client. Generates or reads sources, posts N
//	    concurrent identical requests, verifies the responses agree
//	    byte-for-byte, and writes the listing and counters.
//
// A two-terminal quickstart lives in the repository README; the service-mode
// design notes live in DESIGN.md.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"outliner/internal/appgen"
	"outliner/internal/cache"
	"outliner/internal/profile"
	"outliner/internal/slcd"
)

func main() {
	var (
		mode = flag.String("mode", "serve", "role: serve (compile daemon) | shard (remote cache shard) | client (post build requests)")
		addr = flag.String("addr", "127.0.0.1:9470", "listen address (serve and shard modes)")

		// serve
		cacheDir  = flag.String("cache-dir", "", "daemon build cache directory (empty = cache off)")
		shards    = flag.String("shards", "", "comma-separated remote cache shard base URLs, e.g. http://127.0.0.1:9471,http://127.0.0.1:9472")
		jobs      = flag.Int("j", 0, "per-build parallel workers (0 = one per CPU)")
		maxBuilds = flag.Int("max-builds", 4, "concurrently executing build requests; further requests queue")
		maxQueue  = flag.Int("max-queue", 32, "requests waiting for a build slot before the daemon sheds load with 503 (negative = unbounded)")
		deadline  = flag.Duration("deadline", 0, "daemon-side cap on each build's wall-clock time (0 = none); the smaller of this and the request's timeout_ms wins")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT: how long in-flight builds may finish before stragglers are cancelled")
		remoteTO  = flag.Duration("remote-timeout", 0, "per-operation remote shard timeout (0 = cache package default)")
		breakThr  = flag.Int("breaker-threshold", 0, "consecutive shard failures that open its circuit breaker (0 = default, negative = breakers off)")

		// shard
		shardDir = flag.String("shard-dir", "", "shard entry directory (shard mode; required)")
		shardMax = flag.Int64("shard-max-bytes", 256<<20, "shard size cap in bytes; least-recently-used entries are evicted")

		// client
		server    = flag.String("server", "http://127.0.0.1:9470", "daemon base URL (client mode)")
		requests  = flag.Int("requests", 1, "concurrent identical build requests to post; responses must agree byte-for-byte")
		genMods   = flag.Int("gen-modules", 0, "generate a deterministic app with this many modules instead of reading source files")
		rounds    = flag.Int("rounds", 5, "client request knob: outlining rounds")
		verify    = flag.Bool("verify", true, "client request knob: run the machine-code verifier")
		outFile   = flag.String("o", "", "client: write the agreed image listing to this file")
		counters  = flag.String("counters", "", "client: write the first response's counters as JSON to this file")
		layoutP   = flag.String("layout", "", "client request knob: profile-guided function layout policy (none | hot-cold | c3)")
		profIn    = flag.String("profile-in", "", "client request knob: execution profile file shipped with the request")
		timeoutMS = flag.Int64("timeout-ms", 0, "client request knob: per-request build deadline in milliseconds (0 = none)")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "serve":
		err = runServe(serveOpts{
			addr: *addr, cacheDir: *cacheDir, shards: *shards, jobs: *jobs,
			maxBuilds: *maxBuilds, maxQueue: *maxQueue, deadline: *deadline,
			drainTimeout: *drainTO, remoteTimeout: *remoteTO, breakerThreshold: *breakThr,
		})
	case "shard":
		err = runShard(*addr, *shardDir, *shardMax)
	case "client":
		err = runClient(clientOpts{
			server: *server, requests: *requests, genModules: *genMods,
			rounds: *rounds, verify: *verify, layout: *layoutP, profileIn: *profIn,
			timeoutMS: *timeoutMS,
			outFile:   *outFile, countersFile: *counters, files: flag.Args(),
		})
	default:
		err = fmt.Errorf("unknown -mode %q (serve | shard | client)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "slcd:", err)
		os.Exit(1)
	}
}

type serveOpts struct {
	addr, cacheDir, shards string
	jobs, maxBuilds        int
	maxQueue               int
	deadline               time.Duration
	drainTimeout           time.Duration
	remoteTimeout          time.Duration
	breakerThreshold       int
}

// runServe runs the compile daemon until SIGTERM/SIGINT, then executes the
// graceful-drain protocol: flip /healthz to draining, refuse new builds with
// 503 + Retry-After, let in-flight builds finish up to -drain-timeout, cancel
// stragglers, and only then close the listener.
func runServe(o serveOpts) error {
	opts := slcd.Options{
		CacheDir:         o.cacheDir,
		Parallelism:      o.jobs,
		MaxBuilds:        o.maxBuilds,
		MaxQueue:         o.maxQueue,
		Deadline:         o.deadline,
		RemoteTimeout:    o.remoteTimeout,
		BreakerThreshold: o.breakerThreshold,
	}
	if o.shards != "" {
		opts.ShardURLs = strings.Split(o.shards, ",")
	}
	srv := slcd.NewServer(opts)
	defer srv.Close()
	httpSrv := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "slcd: compile daemon on %s (cache=%q, shards=%d, max-builds=%d, max-queue=%d, deadline=%s)\n",
		o.addr, o.cacheDir, len(opts.ShardURLs), opts.MaxBuilds, opts.MaxQueue, o.deadline)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "slcd: %v received, draining (timeout %s)\n", sig, o.drainTimeout)
		if graceful := srv.Drain(o.drainTimeout); graceful {
			fmt.Fprintln(os.Stderr, "slcd: drain complete, all builds finished")
		} else {
			fmt.Fprintln(os.Stderr, "slcd: drain deadline hit, straggler builds cancelled")
		}
		// Give in-flight response writes a beat to flush, then close.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()
	err := httpSrv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		<-drained
		return nil
	}
	return err
}

func runShard(addr, dir string, maxBytes int64) error {
	if dir == "" {
		return fmt.Errorf("shard mode requires -shard-dir")
	}
	store, err := cache.OpenShard(dir, maxBytes)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "slcd: cache shard on %s (dir=%s, cap=%d bytes, %d entries adopted)\n",
		addr, dir, maxBytes, store.Len())
	return http.ListenAndServe(addr, cache.NewShardServer(store))
}

type clientOpts struct {
	server       string
	requests     int
	genModules   int
	rounds       int
	verify       bool
	layout       string
	profileIn    string
	timeoutMS    int64
	outFile      string
	countersFile string
	files        []string
}

// runClient posts opts.requests concurrent identical build requests and
// verifies every response succeeded with the same listing — the client-side
// half of the determinism contract the race and soak tests assert in-process.
func runClient(opts clientOpts) error {
	req, err := buildRequest(opts)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	if opts.requests < 1 {
		opts.requests = 1
	}
	resps := make([]*slcd.BuildResponse, opts.requests)
	errs := make([]error, opts.requests)
	var wg sync.WaitGroup
	for i := 0; i < opts.requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = post(opts.server, payload)
		}(i)
	}
	wg.Wait()
	for i := 0; i < opts.requests; i++ {
		if errs[i] != nil {
			return fmt.Errorf("request %d: %w", i, errs[i])
		}
		if !resps[i].OK {
			return fmt.Errorf("request %d failed (%s): %s", i, resps[i].ErrorClass, resps[i].Error)
		}
		if resps[i].Listing != resps[0].Listing {
			return fmt.Errorf("request %d listing differs from request 0 — concurrent identical requests must agree byte-for-byte", i)
		}
	}
	first := resps[0]
	fmt.Printf("slcd client: %d request(s) ok, code %d bytes, total %d bytes\n",
		opts.requests, first.CodeSize, first.TotalSize)
	if opts.outFile != "" {
		if err := os.WriteFile(opts.outFile, []byte(first.Listing), 0o644); err != nil {
			return err
		}
	}
	if opts.countersFile != "" {
		data, err := json.MarshalIndent(first.Counters, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.countersFile, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// buildRequest assembles the request from -gen-modules or the .sl file args
// (each file its own module, like slc).
func buildRequest(opts clientOpts) (*slcd.BuildRequest, error) {
	cfg := slcd.DefaultConfig()
	cfg.OutlineRounds = opts.rounds
	cfg.Verify = opts.verify
	cfg.Layout = opts.layout
	cfg.TimeoutMS = opts.timeoutMS
	if opts.profileIn != "" {
		// The profile ships inside the request in its canonical encoding —
		// the daemon has no view of the client's filesystem.
		p, err := profile.ReadFile(opts.profileIn)
		if err != nil {
			return nil, err
		}
		cfg.Profile = p.Encode()
	}
	req := &slcd.BuildRequest{Config: cfg}
	switch {
	case opts.genModules > 0:
		corpus := appgen.UberRider
		scale := appgen.ScaleForModules(corpus, opts.genModules)
		for _, m := range appgen.Generate(corpus, scale) {
			req.Modules = append(req.Modules, slcd.ModuleSource{Name: m.Name, Files: m.Files})
		}
	case len(opts.files) > 0:
		for _, path := range opts.files {
			text, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			name := strings.TrimSuffix(filepath.Base(path), ".sl")
			req.Modules = append(req.Modules, slcd.ModuleSource{
				Name:  name,
				Files: map[string]string{filepath.Base(path): string(text)},
			})
		}
	default:
		return nil, fmt.Errorf("client mode needs .sl file arguments or -gen-modules N")
	}
	return req, nil
}

func post(server string, payload []byte) (*slcd.BuildResponse, error) {
	resp, err := http.Post(server+"/build", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var msg bytes.Buffer
	msg.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		// A draining or overloaded daemon answers 503 with a structured
		// BuildResponse; surface its error class so retry scripts can branch.
		var out slcd.BuildResponse
		if jerr := json.Unmarshal(msg.Bytes(), &out); jerr == nil && out.ErrorClass != "" {
			return &out, nil
		}
		return nil, fmt.Errorf("daemon returned %d: %s", resp.StatusCode, strings.TrimSpace(msg.String()))
	}
	var out slcd.BuildResponse
	if err := json.Unmarshal(msg.Bytes(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}
