// Command slc is the SwiftLite compiler driver: it compiles .sl files
// through the whole pipeline (frontend → SIR → LLIR → machine code), with
// the paper's knobs exposed as flags, and can run the result on the
// simulated machine.
//
// Usage:
//
//	slc [flags] file.sl [file2.sl ...]
//
// Each input file becomes its own module (its base name is the module name),
// mirroring the multi-module structure of a real app.
//
// Examples:
//
//	slc -run prog.sl                      # compile + execute
//	slc -rounds 5 -emit mir prog.sl       # outlined machine code to stdout
//	slc -rounds 0 -size prog.sl           # size report without outlining
//	slc -profile-in app.prof -layout c3 prog.sl  # profile-guided function layout
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"outliner/internal/exec"
	"outliner/internal/fault"
	"outliner/internal/frontend"
	"outliner/internal/layout"
	"outliner/internal/llir"
	"outliner/internal/obs"
	"outliner/internal/outline"
	"outliner/internal/perf"
	"outliner/internal/pipeline"
	"outliner/internal/profile"
)

func main() {
	var (
		rounds   = flag.Int("rounds", 5, "rounds of repeated machine outlining (0 disables)")
		whole    = flag.Bool("whole-program", true, "use the whole-program pipeline (IR link before codegen)")
		emit     = flag.String("emit", "", "emit an artifact to stdout: sir | llir | mir | sizes | patterns")
		run      = flag.Bool("run", false, "execute main after compiling")
		entry    = flag.String("entry", "main", "entry function for -run")
		flat     = flag.Bool("flat-cost", false, "ablation: flat outlining cost model")
		maxSteps = flag.Int64("max-steps", 500_000_000, "interpreter step limit for -run")
		showOutl = flag.Bool("outline-stats", false, "print per-round outlining statistics")
		jobs     = flag.Int("j", 0, "parallel build workers (0 = one per CPU, 1 = serial); output is identical for any value")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto or chrome://tracing)")
		remarks  = flag.String("remarks", "", "write outliner decision remarks as JSONL (one record per candidate decision)")
		summary  = flag.Bool("summary", false, "print an end-of-build summary: stage times, counters, outlining convergence")
		verify   = flag.Bool("verify", true, "run the machine-code verifier after each pipeline stage and outlining round")
		cacheDir = flag.String("cache-dir", "", "content-addressed incremental build cache directory (empty = cache off); the built image is byte-identical cold or warm")
		counters = flag.String("counters", "", "write build counters as a JSON object to this file")
		outFile  = flag.String("o", "", "write a deterministic image listing to this file (byte-comparable across builds)")
		keepOn   = flag.Bool("keep-going", false, "compile every module even after one fails, then report all failures")
		onVerify = flag.String("on-verify-failure", "abort", "outlining verifier-failure policy: abort | rollback-round | disable-outlining")
		fSeed    = flag.Uint64("fault-seed", 0, "deterministic fault-injection schedule seed (used with -fault-rate)")
		fRate    = flag.Float64("fault-rate", 0, "fault-injection probability per fault point (0 disables; a failing seed replays exactly at any -j)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the build to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an end-of-build heap profile to this file (go tool pprof)")
		profOut  = flag.String("profile-out", "", "with -run: write the instrumented run's execution profile (canonical JSON, mergeable across runs) to this file")
		profIn   = flag.String("profile-in", "", "execution profile (from -profile-out or cmd/bench -suite profile) feeding the build: annotates outliner remarks with hot/cold verdicts and enables -outline-cold-only")
		coldOnly = flag.Bool("outline-cold-only", false, "outline only cold functions: with -profile-in, never extract from a function whose entry count reaches -outline-cold-threshold")
		coldThr  = flag.Int64("outline-cold-threshold", 1, "entry count at which a profiled function counts as hot (0 disables cold-only gating)")
		layoutP  = flag.String("layout", "", "profile-guided function layout policy: none | hot-cold | c3 (needs -profile-in to take effect)")
		deadline = flag.Duration("deadline", 0, "cancel the build after this wall-clock duration (0 = no deadline); a cancelled build publishes nothing to the cache")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	switch *onVerify {
	case outline.VerifyAbort, outline.VerifyRollbackRound, outline.VerifyDisableOutlining:
	default:
		fatal(fmt.Errorf("unknown -on-verify-failure mode %q", *onVerify))
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: slc [flags] file.sl ...")
		flag.Usage()
		os.Exit(2)
	}

	var sources []pipeline.Source
	for _, path := range flag.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".sl")
		sources = append(sources, pipeline.Source{
			Name:  name,
			Files: map[string]string{filepath.Base(path): string(text)},
		})
	}

	var tracer *obs.Tracer
	if *traceOut != "" || *remarks != "" || *summary || *counters != "" {
		tracer = obs.NewWith(obs.Config{FineSpans: *traceOut != "", MemStats: true})
	}
	cfg := pipeline.Config{
		WholeProgram:       *whole,
		OutlineRounds:      *rounds,
		SILOutline:         true,
		SpecializeClosures: true,
		MergeFunctions:     true,
		PreserveDataLayout: true,
		SplitGCMetadata:    true,
		FlatOutlineCost:    *flat,
		Verify:             *verify,
		Parallelism:        *jobs,
		Tracer:             tracer,
		CacheDir:           *cacheDir,
		KeepGoing:          *keepOn,
		OnVerifyFailure:    *onVerify,
	}
	if *fRate > 0 {
		cfg.Fault = fault.New(*fSeed, *fRate)
	}
	if *deadline > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *deadline)
		defer cancel()
		cfg.Ctx = ctx
	}
	var prof *profile.Profile
	if *profIn != "" {
		p, err := profile.ReadFile(*profIn)
		if err != nil {
			fatal(err)
		}
		prof = p
		cfg.Profile = prof
	}
	cfg.OutlineColdOnly = *coldOnly
	cfg.OutlineColdThreshold = *coldThr
	if !layout.Valid(*layoutP) {
		fatal(fmt.Errorf("unknown -layout policy %q (want %s)", *layoutP, strings.Join(layout.Policies(), ", ")))
	}
	cfg.Layout = *layoutP
	res, err := pipeline.Build(sources, cfg)
	if err != nil {
		// A failed build still reports its telemetry: the resilience
		// counters (recovered panics, rollbacks, keep-going failures,
		// injected faults) matter most exactly when the build fails.
		if *summary {
			tracer.WriteSummary(os.Stderr)
		}
		if *counters != "" {
			writeCounters(tracer, *counters)
		}
		fatal(err)
	}
	if *traceOut != "" {
		if err := tracer.WriteTraceFile(*traceOut); err != nil {
			fatal(err)
		}
	}
	if *remarks != "" {
		if err := tracer.WriteRemarksFile(*remarks); err != nil {
			fatal(err)
		}
	}
	if *summary {
		if err := tracer.WriteSummary(os.Stderr); err != nil {
			fatal(err)
		}
		if prof != nil {
			fmt.Fprintln(os.Stderr)
			if err := profile.WriteHotReport(os.Stderr, prof, 10, *coldThr); err != nil {
				fatal(err)
			}
			// Report the layout metric at every device page size (4 KiB and
			// 16 KiB in the current grid), with a before/after pair when the
			// layout pass reordered the program.
			if res.PreLayoutImage != nil {
				fmt.Fprintf(os.Stderr, "before %s layout:\n", res.Layout.Policy)
				for _, pt := range perf.PageTouchSizes(res.PreLayoutImage, prof) {
					fmt.Fprint(os.Stderr, perf.FormatPageTouch(pt))
				}
				fmt.Fprintf(os.Stderr, "after %s layout (%d functions moved, %d clusters):\n",
					res.Layout.Policy, res.Layout.Moved, res.Layout.Clusters)
			}
			for _, pt := range perf.PageTouchSizes(res.Image, prof) {
				fmt.Fprint(os.Stderr, perf.FormatPageTouch(pt))
			}
		}
	}
	if *counters != "" {
		writeCounters(tracer, *counters)
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteImageListing(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *showOutl && res.Outline != nil {
		for _, r := range res.Outline.Rounds {
			fmt.Fprintf(os.Stderr, "round %d: %d sequences -> %d functions (%d bytes), saved %d bytes\n",
				r.Round, r.SequencesOutlined, r.FunctionsCreated, r.OutlinedBytes, r.BytesSaved)
		}
	}

	switch *emit {
	case "sir", "llir":
		// IR-stage dumps compile the first module standalone (IR is a
		// per-module artifact before the link).
		for _, src := range sources {
			sm, err := pipeline.CompileToSIR(src, cfg, importsFor(sources, src))
			if err != nil {
				fatal(err)
			}
			if *emit == "sir" {
				fmt.Print(sm.String())
				continue
			}
			lm, err := llir.FromSIR(sm)
			if err != nil {
				fatal(err)
			}
			fmt.Print(lm.String())
		}
	case "mir":
		fmt.Print(res.Prog.String())
	case "sizes":
		fmt.Println(res.Image.Summary())
		for _, s := range res.Image.LargestCodeSymbols(15) {
			fmt.Printf("  %8d  %s\n", s.Size, s.Name)
		}
	case "patterns":
		pats := outline.Analyze(res.Prog, outline.Options{})
		for i, p := range pats {
			if i >= 20 {
				fmt.Printf("... and %d more patterns\n", len(pats)-20)
				break
			}
			fmt.Println(p.Listing())
		}
	case "":
	default:
		fatal(fmt.Errorf("unknown -emit kind %q", *emit))
	}

	if !*run {
		if *emit == "" {
			fmt.Fprintln(os.Stderr, res.Image.Summary())
		}
		return
	}
	var col *profile.Collector
	if *profOut != "" {
		col = profile.NewCollector()
	}
	m, err := exec.New(res.Prog, exec.Options{MaxSteps: *maxSteps, Profile: col})
	if err != nil {
		fatal(err)
	}
	out, err := m.Run(*entry)
	fmt.Print(out)
	if err != nil {
		fatal(err)
	}
	st := m.Stats()
	st.EmitCounters(tracer)
	if col != nil {
		p := col.Profile()
		if err := p.WriteFile(*profOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote execution profile %s (digest %s, %d functions)\n",
			*profOut, p.Digest(), len(p.Funcs))
	}
	fmt.Fprintf(os.Stderr, "executed %d instructions (%d calls, %.2f%% in outlined functions)\n",
		st.DynamicInsts, st.Calls, 100*float64(st.OutlinedInsts)/float64(st.DynamicInsts))
	_ = llir.RuntimeSyms
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slc:", err)
	os.Exit(1)
}

func writeCounters(tracer *obs.Tracer, path string) {
	data, err := json.MarshalIndent(tracer.Counters(), "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

// importsFor exposes every other module's declarations to src.
func importsFor(all []pipeline.Source, src pipeline.Source) *frontend.Imports {
	var others []*frontend.File
	for _, o := range all {
		if o.Name == src.Name {
			continue
		}
		files, err := pipeline.ParseSource(o)
		if err != nil {
			fatal(err)
		}
		others = append(others, files...)
	}
	return frontend.NewImports(others...)
}
