// Benchmarks: one per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its experiment at a reduced scale and reports
// the headline number as a custom metric, so `-bench` output doubles as a
// compact experiment summary.
package outliner_test

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"testing"

	"outliner/internal/appgen"
	"outliner/internal/benchkit"
	"outliner/internal/exec"
	"outliner/internal/experiments"
	"outliner/internal/isa"
	"outliner/internal/mir"
	"outliner/internal/outline"
	"outliner/internal/perf"
	"outliner/internal/pipeline"
	"outliner/internal/suffixtree"
)

const benchScale = 0.35

// BenchmarkFig1GrowthSnapshot regenerates Figure 1 (code-size growth and
// slope ratio between pipelines).
func BenchmarkFig1GrowthSnapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(io.Discard, 4, 0.7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SlopeRatio, "slope-ratio")
		b.ReportMetric(res.FinalSaving*100, "final-saving-%")
	}
}

// BenchmarkTable1Landscape regenerates Table I (savings by level).
func BenchmarkTable1Landscape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(io.Discard, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].SavingPct, "isa-saving-%")
	}
}

// BenchmarkFig5to8Patterns regenerates the §IV pattern analysis (Figures
// 5-8 and the listings).
func BenchmarkFig5to8Patterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPatterns(io.Discard, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PowerFit.B, "power-law-exponent")
		b.ReportMetric(float64(res.NeedFor90Pct), "patterns-for-90%")
	}
}

// BenchmarkFig12RoundsSweep regenerates Figure 12 and Table II (size vs
// rounds, inter vs intra module).
func BenchmarkFig12RoundsSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig12(io.Discard, benchScale, 5)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		b.ReportMetric(100*(1-float64(last.InterCode)/float64(first.InterCode)), "inter-saving-%")
		b.ReportMetric(100*(1-float64(last.IntraCode)/float64(first.IntraCode)), "intra-saving-%")
	}
}

// BenchmarkFig13Spans regenerates Figure 13 / Table III (span performance
// over the device/OS grid).
func BenchmarkFig13Spans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(io.Discard, 0.5, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoMeanRatio, "geomean-ratio")
		b.ReportMetric(res.OutlinedDynPct, "outlined-dyn-%")
	}
}

// BenchmarkTable4Suite regenerates Table IV (the 26-benchmark performance
// suite).
func BenchmarkTable4Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgPct, "avg-overhead-%")
		b.ReportMetric(res.MaxPct, "worst-overhead-%")
	}
}

// BenchmarkBuildTimeDefault and BenchmarkBuildTimeWholeProgram cover §VII-C:
// the default pipeline is much cheaper than the whole-program pipeline with
// five rounds of outlining.
func BenchmarkBuildTimeDefault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := appgen.BuildApp(appgen.UberRider, benchScale,
			pipeline.Config{OutlineRounds: 1, SILOutline: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildTimeWholeProgram measures the paper's production pipeline.
func BenchmarkBuildTimeWholeProgram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := appgen.BuildApp(appgen.UberRider, benchScale, pipeline.OSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelBuild compares the serial whole-program OSize build
// (Parallelism: 1, the paper's situation) against the parallel one
// (Parallelism: NumCPU, the deterministic internal/par layer). On a ≥4-core
// machine the parallel build should be ≥2x faster; the two produce
// byte-identical images (TestParallelBuildDeterminism asserts it).
func BenchmarkParallelBuild(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial-j1", 1},
		{fmt.Sprintf("parallel-j%d", runtime.NumCPU()), runtime.NumCPU()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := pipeline.OSize
			cfg.Parallelism = bc.workers
			for i := 0; i < b.N; i++ {
				res, err := appgen.BuildApp(appgen.UberRider, benchScale, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.CodeSize()), "code-bytes")
			}
		})
	}
}

// BenchmarkColdVsWarmBuild measures the incremental build cache on both
// pipelines: the uncached baseline, a cold build into a fresh cache (write
// path included), and a fully warm rebuild (the warm runs report their cache
// hit rate, which must be 100). The bodies live in internal/benchkit so
// cmd/bench emits the same measurements as machine-readable JSON
// (BENCH_pr4.json is the committed baseline).
func BenchmarkColdVsWarmBuild(b *testing.B) {
	for _, pc := range []struct {
		name string
		cfg  pipeline.Config
	}{
		{"default", pipeline.Default},
		{"wholeprog", pipeline.OSize},
	} {
		b.Run(pc.name+"/uncached", benchkit.UncachedBuild(pc.cfg, benchScale))
		b.Run(pc.name+"/cold", benchkit.ColdBuild(pc.cfg, benchScale))
		b.Run(pc.name+"/warm", benchkit.WarmBuild(pc.cfg, benchScale))
	}
}

// BenchmarkPaperScaleBuild measures incremental builds on a paper-sized
// corpus: cold build, fully-warm rebuild, and a rebuild after a one-module
// body edit (which interface-scoped cache keys keep at a near-perfect warm
// hit rate). The corpus defaults to a CI-sized 120 modules; set
// SCALE_MODULES=476 to reproduce the paper's flagship app (the nightly CI
// job does). Bodies live in internal/benchkit; cmd/bench -suite scale emits
// the same measurements as JSON (BENCH_scale.json is the committed
// baseline).
func BenchmarkPaperScaleBuild(b *testing.B) {
	modules := 120
	if env := os.Getenv("SCALE_MODULES"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			b.Fatalf("SCALE_MODULES=%q: %v", env, err)
		}
		modules = n
	}
	s := benchkit.NewScaleSuite(pipeline.Default, modules)
	defer s.Close()
	b.Logf("corpus: %d modules, %d lines", s.Modules(), s.Lines())
	b.Run("cold", s.Cold())
	b.Run("warm", s.Warm())
	b.Run("edit", s.Edit())
}

// BenchmarkGenerality regenerates §VII-E's other-subjects table.
func BenchmarkGenerality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunGenerality(io.Discard, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].SavingPct, "kernel-saving-%")
	}
}

// BenchmarkDataLayout regenerates the §VI-3 page-fault comparison. It runs
// at the experiment's documented scale: the data working set must exceed
// the modeled residency for the ordering to matter.
func BenchmarkDataLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDataLayout(io.Discard, 0.6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RegressionPct, "interleave-regression-%")
	}
}

// ---- Ablations ----

// benchProgram builds a mid-sized machine program once for the ablations.
func benchProgram(b *testing.B) *mir.Program {
	b.Helper()
	cfg := pipeline.OSize
	cfg.OutlineRounds = 0
	res, err := appgen.BuildApp(appgen.UberRider, benchScale, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.Prog
}

// BenchmarkAblationSuffixTree measures candidate discovery with the suffix
// tree (the shipped design)...
func BenchmarkAblationSuffixTree(b *testing.B) {
	prog := benchProgram(b)
	str := flattenForDiscovery(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := suffixtree.New(str)
		n := 0
		tree.ForEachRepeat(2, 2, func(r suffixtree.Repeat) { n += len(r.Starts) })
		b.ReportMetric(float64(n), "candidates")
	}
}

// ...and BenchmarkAblationNaiveNgrams measures the alternative a naive
// outliner would use: hashing every n-gram up to a fixed length. The suffix
// tree finds repeats of EVERY length in one pass; the n-gram scan must cap
// the length and still does more work.
func BenchmarkAblationNaiveNgrams(b *testing.B) {
	prog := benchProgram(b)
	str := flattenForDiscovery(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for length := 2; length <= 16; length++ {
			counts := make(map[string]int)
			var key []byte
			for s := 0; s+length <= len(str); s++ {
				key = key[:0]
				ok := true
				for _, v := range str[s : s+length] {
					if v < 0 {
						ok = false
						break
					}
					key = append(key, byte(v), byte(v>>8), byte(v>>16))
				}
				if ok {
					counts[string(key)]++
				}
			}
			for _, c := range counts {
				if c >= 2 {
					n += c
				}
			}
		}
		b.ReportMetric(float64(n), "candidates")
	}
}

// flattenForDiscovery maps instructions to integers the way the outliner's
// mapper does (shared ids for identical instructions, sentinels at block
// boundaries).
func flattenForDiscovery(prog *mir.Program) []int {
	ids := make(map[isa.Inst]int)
	var str []int
	sentinel := -1
	for _, f := range prog.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Insts {
				id, ok := ids[in]
				if !ok {
					id = len(ids)
					ids[in] = id
				}
				str = append(str, id)
			}
			str = append(str, sentinel)
			sentinel--
		}
	}
	return str
}

// BenchmarkAblationCostModel compares the strategy-aware cost model with the
// flat always-save-LR model: same rounds, resulting code size as the metric.
func BenchmarkAblationCostModel(b *testing.B) {
	run := func(b *testing.B, flat bool) {
		for i := 0; i < b.N; i++ {
			prog := benchProgram(b).Clone()
			if _, err := outline.Outline(prog, outline.Options{
				Rounds: 5, FlatCostModel: flat,
			}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(prog.CodeSize()), "code-bytes")
		}
	}
	b.Run("strategy-aware", func(b *testing.B) { run(b, false) })
	b.Run("flat-lr-save", func(b *testing.B) { run(b, true) })
}

// BenchmarkOutlinerRound measures one outlining round in isolation (the
// incremental cost each repeat adds to llc, §VII-C).
func BenchmarkOutlinerRound(b *testing.B) {
	base := benchProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prog := base.Clone()
		b.StartTimer()
		if _, err := outline.Outline(prog, outline.Options{Rounds: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures raw interpreter throughput (instructions
// per second), the substrate every performance experiment stands on.
func BenchmarkInterpreter(b *testing.B) {
	res, err := appgen.BuildApp(appgen.UberRider, 0.25, pipeline.OSize)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		m, err := exec.New(res.Prog, exec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run("main"); err != nil {
			b.Fatal(err)
		}
		insts = m.Stats().DynamicInsts
	}
	b.ReportMetric(float64(insts), "dyn-insts/run")
}

// BenchmarkPerfModel measures the cycle model's overhead on top of
// interpretation.
func BenchmarkPerfModel(b *testing.B) {
	res, err := appgen.BuildApp(appgen.UberRider, 0.25, pipeline.OSize)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := perf.New(perf.Devices[3], perf.OSes[2])
		m, err := exec.New(res.Prog, exec.Options{Trace: sim.Observe})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run("main"); err != nil {
			b.Fatal(err)
		}
		r := sim.Finish()
		b.ReportMetric(r.IPC, "ipc")
	}
}

// BenchmarkAblationCanonicalize measures the §VIII-1 extension: canonical
// commutative operand order exposes more outlining matches.
func BenchmarkAblationCanonicalize(b *testing.B) {
	run := func(b *testing.B, canonicalize bool) {
		for i := 0; i < b.N; i++ {
			prog := benchProgram(b).Clone()
			if canonicalize {
				outline.CanonicalizeCommutative(prog)
			}
			if _, err := outline.Outline(prog, outline.Options{Rounds: 5}); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(prog.CodeSize()), "code-bytes")
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("canonicalized", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationLayout measures the §VIII-3 extension: placing outlined
// functions next to their heaviest callers reduces instruction-cache misses.
func BenchmarkAblationLayout(b *testing.B) {
	build := func(layout bool) *pipeline.Result {
		cfg := pipeline.OSize
		cfg.LayoutOutlined = layout
		res, err := appgen.BuildApp(appgen.UberRider, benchScale, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	measure := func(b *testing.B, res *pipeline.Result) {
		for i := 0; i < b.N; i++ {
			sim := perf.New(perf.Devices[0], perf.OSes[2])
			m, err := exec.New(res.Prog, exec.Options{Trace: sim.Observe})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Run("span1"); err != nil {
				b.Fatal(err)
			}
			r := sim.Finish()
			b.ReportMetric(float64(r.ICacheMisses), "icache-misses")
			b.ReportMetric(r.Cycles, "cycles")
		}
	}
	creationOrder := build(false)
	callerAdjacent := build(true)
	b.Run("creation-order", func(b *testing.B) { measure(b, creationOrder) })
	b.Run("caller-adjacent", func(b *testing.B) { measure(b, callerAdjacent) })
}
