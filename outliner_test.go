package outliner_test

import (
	"strings"
	"testing"

	"outliner"
)

const quickSrc = `
class Greeter {
  var count: Int
  init() { self.count = 0 }
  func greet(name: String) -> Int {
    self.count = self.count + 1
    return name.count + self.count
  }
}
func main() {
  let g = Greeter()
  print(g.greet(name: "world"))
  print(g.greet(name: "again"))
}
`

func TestPublicBuildAndRun(t *testing.T) {
	res, err := outliner.Build([]outliner.Module{
		{Name: "App", Files: map[string]string{"app.sl": quickSrc}},
	}, outliner.Production())
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if out != "6\n7\n" {
		t.Errorf("out = %q", out)
	}
	if res.CodeSize <= 0 || res.BinarySize <= res.CodeSize {
		t.Errorf("sizes wrong: code %d binary %d", res.CodeSize, res.BinarySize)
	}
}

func TestPublicPipelineComparison(t *testing.T) {
	mods := []outliner.Module{{Name: "App", Files: map[string]string{"app.sl": quickSrc}}}
	def, err := outliner.Build(mods, outliner.DefaultPipeline())
	if err != nil {
		t.Fatal(err)
	}
	prod, err := outliner.Build(mods, outliner.Production())
	if err != nil {
		t.Fatal(err)
	}
	if prod.CodeSize > def.CodeSize {
		t.Errorf("production build larger: %d vs %d", prod.CodeSize, def.CodeSize)
	}
	a, _ := def.Run("main")
	b, _ := prod.Run("main")
	if a != b {
		t.Error("pipelines disagree on program behaviour")
	}
}

func TestPublicPatterns(t *testing.T) {
	res, err := outliner.Build([]outliner.Module{
		{Name: "App", Files: map[string]string{"app.sl": quickSrc}},
	}, outliner.Options{WholeProgram: true, SplitGCMetadata: true})
	if err != nil {
		t.Fatal(err)
	}
	pats := res.Patterns()
	if len(pats) == 0 {
		t.Fatal("no patterns in a refcounted program")
	}
	if pats[0].Count < 2 || pats[0].Listing == "" {
		t.Errorf("bad top pattern: %+v", pats[0])
	}
}

func TestPublicOutlineText(t *testing.T) {
	mirText := `
func @a {
entry:
  STPXpre $x29, $x30, $sp, #-16
  ORRXrs $x0, $xzr, $x19
  BL @swift_release
  ORRXrs $x0, $xzr, $x20
  BL @swift_release
  LDPXpost $x29, $x30, $sp, #16
  RET
}
func @b {
entry:
  STPXpre $x29, $x30, $sp, #-16
  ORRXrs $x0, $xzr, $x19
  BL @swift_release
  ORRXrs $x0, $xzr, $x20
  BL @swift_release
  LDPXpost $x29, $x30, $sp, #16
  RET
}
func @c {
entry:
  STPXpre $x29, $x30, $sp, #-16
  ORRXrs $x0, $xzr, $x19
  BL @swift_release
  ORRXrs $x0, $xzr, $x20
  BL @swift_release
  LDPXpost $x29, $x30, $sp, #16
  RET
}
`
	out, rounds, err := outliner.OutlineText(mirText, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 || rounds[0].SequencesOutlined == 0 {
		t.Fatalf("nothing outlined: %+v", rounds)
	}
	if !strings.Contains(out, "OUTLINED_FUNCTION_") {
		t.Error("output lacks outlined functions")
	}
}

func TestPublicMachineCodeDump(t *testing.T) {
	res, err := outliner.Build([]outliner.Module{
		{Name: "App", Files: map[string]string{"app.sl": `func main() { print(1) }`}},
	}, outliner.Options{WholeProgram: true, SplitGCMetadata: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.MachineCode(), "func @main") {
		t.Error("machine code dump lacks main")
	}
}
