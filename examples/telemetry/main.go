// telemetry builds a small program with the observability layer enabled and
// shows all three products: the remarks stream (why each outlining candidate
// was selected or rejected), the counters, and a Chrome trace file viewable
// in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"outliner"
)

const src = `
class Point {
  var x: Int
  var y: Int
  init(x: Int, y: Int) {
    self.x = x
    self.y = y
  }
  func dot(o: Point) -> Int { return self.x * o.x + self.y * o.y }
  func manhattan(o: Point) -> Int {
    var dx = self.x - o.x
    if dx < 0 { dx = 0 - dx }
    var dy = self.y - o.y
    if dy < 0 { dy = 0 - dy }
    return dx + dy
  }
}

func main() {
  let a = Point(x: 3, y: 4)
  let b = Point(x: 6, y: 8)
  print(a.dot(o: b))
  print(a.manhattan(o: b))
}
`

func main() {
	mods := []outliner.Module{{Name: "Geo", Files: map[string]string{"geo.sl": src}}}

	tr := outliner.NewTracer(outliner.TracerConfig{FineSpans: true, MemStats: true})
	opts := outliner.Production()
	opts.Tracer = tr
	res, err := outliner.Build(mods, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built: %d bytes of code, %d bytes total\n\n", res.CodeSize, res.BinarySize)

	fmt.Println("outliner decisions (the remarks stream):")
	for _, r := range tr.Remarks() {
		switch r.Status {
		case "selected":
			fmt.Printf("  round %d: selected %d×%d-instruction pattern -> %s (saves %d bytes)\n",
				r.Round, r.Occurrences, r.PatternLen, r.Function, r.Benefit)
		case "rejected":
			fmt.Printf("  round %d: rejected %d×%d-instruction pattern: %s\n",
				r.Round, r.Occurrences, r.PatternLen, r.Reason)
		}
	}

	trace := filepath.Join(os.TempDir(), "outliner-telemetry.trace.json")
	if err := tr.WriteTraceFile(trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace written to %s — open it in https://ui.perfetto.dev\n\n", trace)

	if err := tr.WriteSummary(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
