// jsoninit demonstrates the paper's §IV-(4) finding: Swift's `try`-heavy
// object initializers explode during out-of-SSA translation. A class with N
// fields initialized by throwing lookups produces a shared error-cleanup
// block with N initialization flags; phi elimination then materializes O(N²)
// constant copies (the paper's Figure 9 / Listing 11) — which machine
// outlining later claws back.
//
//	go run ./examples/jsoninit
package main

import (
	"fmt"
	"log"
	"strings"

	"outliner"
)

// makeModel builds a SwiftLite class with nFields try-initialized fields —
// the shape of a JSON-decodable model (the paper's example had 118).
func makeModel(nFields int) string {
	var b strings.Builder
	b.WriteString(`
func lookup(store: [Int], key: Int) throws -> String {
  if key < 0 { throw 1 }
  if store[key % store.count] == 0 { throw 2 }
  return "v"
}

class Trip {
`)
	for i := 0; i < nFields; i++ {
		fmt.Fprintf(&b, "  var f%d: String\n", i)
	}
	b.WriteString("  init(store: [Int], base: Int) throws {\n")
	for i := 0; i < nFields; i++ {
		fmt.Fprintf(&b, "    self.f%d = try lookup(store: store, key: base + %d)\n", i, i)
	}
	b.WriteString("  }\n}\n")
	b.WriteString(`
func main() {
  var store = Array<Int>(64)
  for i in 0 ..< 64 { store[i] = i + 1 }
  do {
    let t = try Trip(store: store, base: 0)
    print(t.f0.count)
  } catch {
    print(error)
  }
}
`)
	return b.String()
}

func main() {
	fmt.Println("try-heavy initializers: code size vs field count")
	fmt.Println("(the out-of-SSA blow-up grows super-linearly; outlining recovers much of it)")
	fmt.Println()
	fmt.Printf("%8s  %14s  %14s  %9s\n", "fields", "no outlining", "5 rounds", "recovered")
	for _, n := range []int{4, 8, 16, 32, 64} {
		mods := []outliner.Module{{Name: "M", Files: map[string]string{"m.sl": makeModel(n)}}}
		plain, err := outliner.Build(mods, outliner.Options{WholeProgram: true, SplitGCMetadata: true})
		if err != nil {
			log.Fatal(err)
		}
		opt, err := outliner.Build(mods, outliner.Production())
		if err != nil {
			log.Fatal(err)
		}
		// Behaviour check while we're here.
		a, err := plain.Run("main")
		if err != nil {
			log.Fatal(err)
		}
		if b, _ := opt.Run("main"); a != b {
			log.Fatal("outlining changed behaviour")
		}
		fmt.Printf("%8d  %8d bytes  %8d bytes  %8.1f%%\n",
			n, plain.CodeSize, opt.CodeSize,
			100*(1-float64(opt.CodeSize)/float64(plain.CodeSize)))
	}
	fmt.Println("\nper-field marginal cost rises with N: each added try field contributes")
	fmt.Println("copies for every error edge below it (Figure 9's Init phi web).")
}
