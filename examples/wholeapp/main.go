// wholeapp builds the synthetic UberRider-like application under both
// pipelines, reports the size ledger, runs a core span on two device models
// under the cycle simulator, and prints the outlining round-by-round story —
// the whole paper in one program.
//
//	go run ./examples/wholeapp
package main

import (
	"fmt"
	"log"

	"outliner/internal/appgen"
	"outliner/internal/binimg"
	"outliner/internal/exec"
	"outliner/internal/mir"
	"outliner/internal/perf"
	"outliner/internal/pipeline"
)

func main() {
	const scale = 0.5
	fmt.Println("building the synthetic UberRider app at scale", scale, "...")

	baseline, err := appgen.BuildApp(appgen.UberRider, scale, pipeline.Default)
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := appgen.BuildApp(appgen.UberRider, scale, pipeline.OSize)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsize ledger:")
	fmt.Printf("  default pipeline:        %s\n", baseline.Image.Summary())
	fmt.Printf("  whole-program, 5 rounds: %s\n", optimized.Image.Summary())
	fmt.Printf("  code saving: %.1f%%  (paper: 23%% on the real app)\n",
		100*(1-float64(optimized.CodeSize())/float64(baseline.CodeSize())))

	fmt.Println("\noutlining rounds (diminishing returns, §V-B):")
	for _, r := range optimized.Outline.Rounds {
		fmt.Printf("  round %d: %5d sequences -> %4d functions, %6d bytes saved\n",
			r.Round, r.SequencesOutlined, r.FunctionsCreated, r.BytesSaved)
	}

	fmt.Println("\nbiggest code symbols in the optimized image:")
	for _, s := range optimized.Image.LargestCodeSymbols(5) {
		fmt.Printf("  %7s  %s\n", binimg.FormatSize(s.Size), s.Name)
	}

	// Behaviour equivalence end to end.
	outA := mustRun(baseline.Prog, "main")
	outB := mustRun(optimized.Prog, "main")

	if outA != outB {
		log.Fatalf("pipelines disagree: %q vs %q", outA, outB)
	}
	fmt.Printf("\napp output (both pipelines): %s", outA)

	// A core span on an old and a new phone.
	fmt.Println("\nspan1 under the cycle model (P50-style single sample):")
	for _, dev := range []perf.Device{perf.Devices[0], perf.Devices[len(perf.Devices)-1]} {
		rb := simulate(baseline, dev)
		ro := simulate(optimized, dev)
		fmt.Printf("  %-12s baseline %.3fms, optimized %.3fms (ratio %.3f; <1 = faster)\n",
			dev.Name, rb.Seconds*1000, ro.Seconds*1000, ro.Seconds/rb.Seconds)
	}
}

func mustRun(prog *mir.Program, entry string) string {
	m, err := exec.New(prog, exec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	out, err := m.Run(entry)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func simulate(res *pipeline.Result, dev perf.Device) perf.Result {
	sim := perf.New(dev, perf.OSes[2])
	m, err := exec.New(res.Prog, exec.Options{Trace: sim.Observe})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run("span1"); err != nil {
		log.Fatal(err)
	}
	return sim.Finish()
}
