// closurespec reproduces the paper's Listing 9 anecdote: three generic-ish
// wrappers each pass a different closure to the same combinator; closure
// specialization clones the combinator per call site, and the three clones'
// large bodies become the program's longest repeating machine pattern —
// which whole-program outlining then collapses.
//
//	go run ./examples/closurespec
package main

import (
	"fmt"
	"log"
	"strings"

	"outliner"
)

func swifterLike() string {
	var b strings.Builder
	// The combinator: a long straight-line body (the "124 updates to the
	// globalMap" of the paper, scaled down) plus the closure invocation.
	b.WriteString("func evaluate(node: String, f: (Int) -> Int) -> Int {\n  var acc = f(node.count)\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "  acc = acc + %d * (acc %% %d + 1)\n", i+1, i+3)
	}
	b.WriteString("  return acc\n}\n")
	// Three wrappers with distinct closures (ul / table / tbody in Swifter).
	for i, name := range []string{"ul", "tbl", "tbody"} {
		fmt.Fprintf(&b, `
func %s(x: Int) -> Int {
  return evaluate(node: "%s", f: { (v: Int) -> Int in return v * %d + x })
}
`, name, name, i+2)
	}
	b.WriteString(`
func main() {
  print(ul(x: 1) + tbl(x: 2) + tbody(x: 3))
}
`)
	return b.String()
}

func main() {
	mods := []outliner.Module{{Name: "Swifter", Files: map[string]string{"s.sl": swifterLike()}}}

	noSpec, err := outliner.Build(mods, outliner.Options{WholeProgram: true, SplitGCMetadata: true})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := outliner.Build(mods, outliner.Options{
		WholeProgram: true, SplitGCMetadata: true, SpecializeClosures: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	specOutlined, err := outliner.Build(mods, outliner.Production())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("closure specialization and the longest repeating pattern")
	fmt.Printf("  shared combinator, no specialization:  %5d bytes\n", noSpec.CodeSize)
	fmt.Printf("  specialized (three clones):            %5d bytes  <- duplication!\n", spec.CodeSize)
	fmt.Printf("  specialized + 5 rounds of outlining:   %5d bytes  <- clawed back\n", specOutlined.CodeSize)

	// The longest pattern in the specialized build is the cloned body.
	longest := 0
	count := 0
	for _, p := range spec.Patterns() {
		if p.Length > longest {
			longest, count = p.Length, p.Count
		}
	}
	fmt.Printf("\nlongest repeating pattern after specialization: %d instructions x%d\n", longest, count)
	fmt.Println("(the paper found 279 instructions x3 from exactly this mechanism)")

	a, err := spec.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	b, err := specOutlined.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	if a != b {
		log.Fatal("behaviour changed")
	}
	fmt.Printf("\nprogram output (identical in all builds): %s", a)
}
