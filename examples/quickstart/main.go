// Quickstart: compile a small SwiftLite program with and without the
// paper's optimization, compare sizes, inspect the top repeating machine
// patterns, and execute both binaries to confirm identical behaviour.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"outliner"
)

const src = `
class Account {
  var owner: String
  var balance: Int
  init(owner: String, balance: Int) {
    self.owner = owner
    self.balance = balance
  }
  func deposit(amount: Int) -> Int {
    self.balance = self.balance + amount
    return self.balance
  }
}

func settle(a: Account, b: Account, amount: Int) -> Int {
  let fromA = a.deposit(amount: 0 - amount)
  let toB = b.deposit(amount: amount)
  return fromA + toB
}

func main() {
  let alice = Account(owner: "alice", balance: 100)
  let bob = Account(owner: "bob", balance: 50)
  print(settle(a: alice, b: bob, amount: 30))
  print(settle(a: bob, b: alice, amount: 10))
  print(alice.balance)
  print(bob.balance)
}
`

func main() {
	mods := []outliner.Module{{Name: "Bank", Files: map[string]string{"bank.sl": src}}}

	baseline, err := outliner.Build(mods, outliner.DefaultPipeline())
	if err != nil {
		log.Fatal(err)
	}
	optimized, err := outliner.Build(mods, outliner.Production())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline  (default pipeline):      %5d bytes of code\n", baseline.CodeSize)
	fmt.Printf("optimized (whole-program, 5 rounds): %3d bytes of code (%.1f%% smaller)\n",
		optimized.CodeSize,
		100*(1-float64(optimized.CodeSize)/float64(baseline.CodeSize)))
	for _, r := range optimized.Rounds {
		if r.SequencesOutlined == 0 {
			break
		}
		fmt.Printf("  round %d: outlined %d sequences into %d functions\n",
			r.Round, r.SequencesOutlined, r.FunctionsCreated)
	}

	fmt.Println("\ntop repeating machine patterns (before outlining):")
	plain, err := outliner.Build(mods, outliner.Options{WholeProgram: true, SplitGCMetadata: true})
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range plain.Patterns() {
		if i == 3 {
			break
		}
		fmt.Print(p.Listing)
	}

	outA, err := baseline.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	outB, err := optimized.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline output:\n%s", outA)
	if outA == outB {
		fmt.Println("optimized binary behaves identically ✓")
	} else {
		log.Fatalf("outputs differ!\noptimized:\n%s", outB)
	}
}
